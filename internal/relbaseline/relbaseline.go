// Package relbaseline is the relational comparator used by the
// benchmark harness, standing in for the commercial RDBMS of the
// paper's Section 7 experiments. It evaluates each output measure as
// an independent SQL-style query over the algebra translation of the
// workflow (Tables 2-4 give the SQL equivalents), in the classic
// materializing operator-at-a-time style of a relational engine:
//
//   - every measure is evaluated from scratch — shared sub-expressions
//     are recomputed per reference, which is exactly the cost shape of
//     nested sub-queries without common-subexpression reuse;
//   - every operator spools its full result to disk before the next
//     operator reads it (no inter-operator streaming);
//   - every GROUP BY — over the fact table or over an intermediate —
//     is evaluated by external sort + group scan;
//   - match and combine joins build an in-memory hash of the smaller
//     (aggregated) side and probe it while scanning the spooled outer.
//
// What this baseline deliberately does NOT do is the paper's
// contribution: sharing one sorted scan across measures and streaming
// finalized groups between operators. The relative cost of those
// choices is the experiment.
package relbaseline

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// Options configures a run.
type Options struct {
	// TempDir receives materialized intermediates and sort runs.
	TempDir string
	// ChunkRecords tunes the external sort.
	ChunkRecords int
	// Recorder, if non-nil, receives one "measure" span per evaluated
	// measure (each holding that query's sort spans) and the standard
	// engine metrics.
	Recorder *obs.Recorder
	// Guard, if non-nil, enforces cancellation and resource budgets
	// across every operator scan, sort, and spool.
	Guard *qguard.Guard
}

// Stats reports what the baseline did.
type Stats struct {
	FactScans   int // end-to-end reads of the fact file
	Sorts       int // external sorts (fact or intermediate)
	Materials   int // operator results spooled to disk
	RowsSpooled int64
	SortTime    time.Duration
	TotalTime   time.Duration
}

// Result holds the computed tables, keyed by output measure name.
type Result struct {
	Tables map[string]*core.Table
	Stats  Stats
}

// rel is a spooled relation: a record file of full-length granularity
// codes plus the single measure column M.
type rel struct {
	path  string
	gran  model.Gran
	codec *model.KeyCodec
}

type evaluator struct {
	c     *core.Compiled
	fact  string
	opts  Options
	stats *Stats
	guard *qguard.Guard
	temps []string
	// rec is the current measure's recorder view; scanned/finalized
	// accumulate across operators and publish at end of run.
	rec       *obs.Recorder
	scanned   int64
	finalized int64
}

// Run evaluates every output measure of the workflow independently.
func Run(c *core.Compiled, factPath string, opts Options) (*Result, error) {
	return RunMeasures(c, factPath, c.Outputs(), opts)
}

// RunMeasures evaluates only the named measures, one independent
// query each. Benchmarks use it to compare engines on the final
// measure of a workflow, matching the paper's single-query SQL runs.
func RunMeasures(c *core.Compiled, factPath string, names []string, opts Options) (*Result, error) {
	if opts.TempDir == "" {
		opts.TempDir = os.TempDir()
	}
	orec := opts.Recorder
	if orec == nil {
		orec = obs.New()
	}
	start := time.Now()
	res := &Result{Tables: make(map[string]*core.Table)}
	ev := &evaluator{c: c, fact: factPath, opts: opts, stats: &res.Stats, guard: opts.Guard}
	defer ev.cleanup()
	for _, name := range names {
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		mSpan := orec.Start(obs.SpanMeasure)
		mSpan.SetAttr("measure", name)
		ev.rec = orec.At(mSpan)
		preScanned, preFinalized := ev.scanned, ev.finalized
		e, err := core.Translate(c, name)
		if err != nil {
			return nil, fmt.Errorf("relbaseline: %w", err)
		}
		r, err := ev.eval(e)
		if err != nil {
			return nil, fmt.Errorf("relbaseline: measure %q: %w", name, err)
		}
		tbl, err := ev.load(r)
		if err != nil {
			return nil, fmt.Errorf("relbaseline: measure %q: %w", name, err)
		}
		if err := opts.Guard.NoteResultRows(int64(len(tbl.Rows))); err != nil {
			return nil, err
		}
		res.Tables[name] = tbl
		mSpan.End()
		// Per-node actuals: everything this measure's operator tree did.
		orec.MergeNodeStats(obs.NodeStats{
			Node:           name,
			RecordsIn:      ev.scanned - preScanned,
			RecordsOut:     int64(len(tbl.Rows)),
			CellsCreated:   ev.finalized - preFinalized,
			CellsFinalized: ev.finalized - preFinalized,
		})
	}
	res.Stats.TotalTime = time.Since(start)
	orec.Counter(obs.MRecordsScanned).Add(ev.scanned)
	orec.Counter(obs.MCellsCreated).Add(ev.finalized) // one pass per cell: created == finalized
	orec.Counter(obs.MCellsFinalized).Add(ev.finalized)
	orec.Counter(obs.MFactScans).Add(int64(res.Stats.FactScans))
	orec.Counter(obs.MSpillBytes).Add(res.Stats.RowsSpooled * int64(8*(c.Schema.NumDims()+1)))
	orec.Counter(obs.MSpillEvents).Add(int64(res.Stats.Materials))
	// Registered for vocabulary parity: no live frontier here, and the
	// hash gauge only moves when a measure query joins a dimension map.
	orec.Gauge(obs.GLiveCellsHWM)
	orec.Gauge(obs.GHashBytesHWM)
	return res, nil
}

// noteSpooled records rows written to a spool against both the spool
// statistic and the guard's spill-byte budget (cols 8-byte columns per
// row approximates the on-disk footprint).
func (ev *evaluator) noteSpooled(rows int64, cols int) error {
	ev.stats.RowsSpooled += rows
	return ev.guard.NoteSpill(rows * int64(8*cols))
}

func (ev *evaluator) cleanup() {
	for _, p := range ev.temps {
		os.Remove(p)
	}
}

// tempSeq disambiguates temp paths across concurrent evaluators in one
// process sharing a temp directory.
var tempSeq atomic.Int64

func (ev *evaluator) tempFile(tag string) string {
	p := filepath.Join(ev.opts.TempDir, fmt.Sprintf("awra-rel-%d-%s-%d.tmp", os.Getpid(), tag, tempSeq.Add(1)))
	ev.temps = append(ev.temps, p)
	return p
}

// spool creates a writer for a new intermediate relation at gran.
func (ev *evaluator) spool(tag string, s *model.Schema) (*storage.Writer, string, error) {
	path := ev.tempFile(tag)
	w, err := storage.Create(path, s.NumDims(), 1)
	if err != nil {
		return nil, "", err
	}
	ev.stats.Materials++
	return w, path, nil
}

// keyOf builds the region key of a full-codes row.
func keyOf(codec *model.KeyCodec, s *model.Schema, gran model.Gran, codes []int64) model.Key {
	sub := make([]int64, 0, codec.Width())
	for d := 0; d < s.NumDims(); d++ {
		if gran[d] != s.Dim(d).ALL() {
			sub = append(sub, codes[d])
		}
	}
	return codec.FromCodes(sub)
}

// load reads a spooled relation into a core.Table.
func (ev *evaluator) load(r *rel) (*core.Table, error) {
	tbl := core.NewTable(ev.c.Schema, r.gran)
	reader, err := storage.OpenGuarded(r.path, ev.guard)
	if err != nil {
		return nil, err
	}
	defer reader.Close()
	var rec model.Record
	for {
		ok, err := reader.Next(&rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			return tbl, nil
		}
		tbl.Rows[keyOf(tbl.Codec, ev.c.Schema, r.gran, rec.Dims)] = rec.Ms[0]
	}
}

// loadMap reads a spooled relation into a key->value hash (the build
// side of a hash join).
func (ev *evaluator) loadMap(r *rel) (map[model.Key]float64, error) {
	tbl, err := ev.load(r)
	if err != nil {
		return nil, err
	}
	ev.rec.Gauge(obs.GHashBytesHWM).SetMax(int64(len(tbl.Rows)) * int64(tbl.Codec.KeyBytes()+24))
	return tbl.Rows, nil
}

func (ev *evaluator) eval(e *core.Expr) (*rel, error) {
	switch e.Kind {
	case core.AggExpr:
		return ev.evalAgg(e)
	case core.SelectExpr:
		return ev.evalSelect(e)
	case core.MatchJoinExpr:
		return ev.evalMatchJoin(e)
	case core.CombineJoinExpr:
		return ev.evalCombineJoin(e)
	default:
		return nil, fmt.Errorf("cannot evaluate %v as a measure table", e.Kind)
	}
}

// evalFactFile resolves a fact-like expression (D or sigma(D) chains)
// to a record file, materializing selections.
func (ev *evaluator) evalFactFile(e *core.Expr) (string, error) {
	if e.Kind == core.FactExpr {
		return ev.fact, nil
	}
	in, err := ev.evalFactFile(e.Children()[0])
	if err != nil {
		return "", err
	}
	r, err := storage.OpenGuarded(in, ev.guard)
	if err != nil {
		return "", err
	}
	defer r.Close()
	ev.stats.FactScans++
	out := ev.tempFile("sel")
	w, err := storage.Create(out, r.Header().NumDims, r.Header().NumMeasures)
	if err != nil {
		return "", err
	}
	ev.stats.Materials++
	var rec model.Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			w.Close()
			return "", err
		}
		if !ok {
			break
		}
		if e.Pred.Eval(rec.Dims, rec.Ms) {
			if err := w.Write(&rec); err != nil {
				w.Close()
				return "", err
			}
		}
	}
	if err := ev.noteSpooled(w.Count(), r.Header().NumDims+r.Header().NumMeasures); err != nil {
		w.Close()
		return "", err
	}
	return out, w.Close()
}

// evalAgg is the GROUP BY of Table 2: external sort by the group key,
// then a group scan, spooled to disk.
func (ev *evaluator) evalAgg(e *core.Expr) (*rel, error) {
	sch := e.Schema()
	gran := e.Gran()
	in := e.Children()[0]

	var (
		inPath   string
		inIsFact bool
		srcGran  model.Gran
	)
	if in.IsFactLike() {
		p, err := ev.evalFactFile(in)
		if err != nil {
			return nil, err
		}
		inPath, inIsFact = p, true
	} else {
		r, err := ev.eval(in)
		if err != nil {
			return nil, err
		}
		inPath, srcGran = r.path, r.gran
	}

	// Map a row to its group codes at the target granularity.
	groupCodes := func(dims []int64, out []int64) {
		for d := 0; d < sch.NumDims(); d++ {
			if inIsFact {
				out[d] = sch.Dim(d).Up(0, gran[d], dims[d])
			} else {
				out[d] = sch.Dim(d).Up(srcGran[d], gran[d], dims[d])
			}
		}
	}
	ga := make([]int64, sch.NumDims())
	gb := make([]int64, sch.NumDims())
	less := func(a, b *model.Record) bool {
		groupCodes(a.Dims, ga)
		groupCodes(b.Dims, gb)
		for d := range ga {
			if ga[d] != gb[d] {
				return ga[d] < gb[d]
			}
		}
		return false
	}
	sorted := ev.tempFile("srt")
	t0 := time.Now()
	sortSpan := ev.rec.Start(obs.SpanSort)
	if _, err := storage.SortFile(inPath, sorted, less, storage.SortOptions{
		ChunkRecords: ev.opts.ChunkRecords, TempDir: ev.opts.TempDir,
		Recorder: ev.rec.At(sortSpan), Guard: ev.guard,
	}); err != nil {
		return nil, err
	}
	sortSpan.End()
	ev.stats.SortTime += time.Since(t0)
	ev.stats.Sorts++
	if inIsFact {
		ev.stats.FactScans++
	}

	r, err := storage.OpenGuarded(sorted, ev.guard)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	w, outPath, err := ev.spool("agg", sch)
	if err != nil {
		return nil, err
	}
	scanSpan := ev.rec.Start(obs.SpanScan)
	scanSpan.SetTotal(r.TotalRecords())
	defer scanSpan.End()
	var (
		rec     model.Record
		curKey  []int64
		curAgg  agg.Aggregator
		haveKey bool
		seen    int64
	)
	outRec := model.Record{Dims: make([]int64, sch.NumDims()), Ms: make([]float64, 1)}
	flush := func() error {
		if !haveKey {
			return nil
		}
		copy(outRec.Dims, curKey)
		outRec.Ms[0] = curAgg.Final()
		return w.Write(&outRec)
	}
	sameKey := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok {
			break
		}
		seen++
		if seen&255 == 0 {
			scanSpan.SetDone(seen)
		}
		if inIsFact {
			ev.scanned++
		}
		groupCodes(rec.Dims, ga)
		if !haveKey || !sameKey(ga, curKey) {
			if err := flush(); err != nil {
				w.Close()
				return nil, err
			}
			curKey = append(curKey[:0], ga...)
			curAgg = e.Agg.New()
			haveKey = true
		}
		switch {
		case inIsFact && e.FactMeasure >= 0:
			curAgg.Update(rec.Ms[e.FactMeasure])
		case inIsFact:
			curAgg.Update(0)
		default:
			curAgg.Update(rec.Ms[0])
		}
	}
	if err := flush(); err != nil {
		w.Close()
		return nil, err
	}
	scanSpan.SetDone(seen)
	ev.finalized += w.Count()
	if err := ev.noteSpooled(w.Count(), sch.NumDims()+1); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &rel{path: outPath, gran: gran, codec: model.NewKeyCodec(sch, gran)}, nil
}

// evalSelect filters a spooled relation into a new spool.
func (ev *evaluator) evalSelect(e *core.Expr) (*rel, error) {
	src, err := ev.eval(e.Children()[0])
	if err != nil {
		return nil, err
	}
	sch := e.Schema()
	r, err := storage.OpenGuarded(src.path, ev.guard)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	w, outPath, err := ev.spool("sel", sch)
	if err != nil {
		return nil, err
	}
	var rec model.Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if e.Pred.Eval(rec.Dims, rec.Ms) {
			if err := w.Write(&rec); err != nil {
				w.Close()
				return nil, err
			}
		}
	}
	if err := ev.noteSpooled(w.Count(), sch.NumDims()+1); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &rel{path: outPath, gran: src.gran, codec: src.codec}, nil
}

// evalMatchJoin is the LEFT OUTER JOIN + GROUP BY of Table 3: build a
// hash on T, probe while scanning the spooled S, spool the output.
func (ev *evaluator) evalMatchJoin(e *core.Expr) (*rel, error) {
	sch := e.Schema()
	s, err := ev.eval(e.Children()[0])
	if err != nil {
		return nil, err
	}
	t, err := ev.eval(e.Children()[1])
	if err != nil {
		return nil, err
	}

	// Build side: T, keyed for the probe.
	var tMap map[model.Key]float64
	switch e.Cond.Kind {
	case core.MatchSelf, core.MatchParentChild, core.MatchSibling:
		tMap, err = ev.loadMap(t)
		if err != nil {
			return nil, err
		}
	case core.MatchChildParent:
		// Hash-aggregate T up to S's granularity (the output size is
		// |S|, not |T|).
		tMap = nil
	default:
		return nil, fmt.Errorf("unknown match kind %v", e.Cond.Kind)
	}

	var cpAggs map[model.Key]agg.Aggregator
	if e.Cond.Kind == core.MatchChildParent {
		cpAggs = make(map[model.Key]agg.Aggregator)
		r, err := storage.OpenGuarded(t.path, ev.guard)
		if err != nil {
			return nil, err
		}
		sCodec := model.NewKeyCodec(sch, s.gran)
		var rec model.Record
		codes := make([]int64, sch.NumDims())
		for {
			ok, nerr := r.Next(&rec)
			if nerr != nil {
				r.Close()
				return nil, nerr
			}
			if !ok {
				break
			}
			for d := 0; d < sch.NumDims(); d++ {
				codes[d] = sch.Dim(d).Up(t.gran[d], s.gran[d], rec.Dims[d])
			}
			k := keyOf(sCodec, sch, s.gran, codes)
			a, ok := cpAggs[k]
			if !ok {
				a = e.Agg.New()
				cpAggs[k] = a
			}
			a.Update(rec.Ms[0])
		}
		r.Close()
	}

	sCodec := model.NewKeyCodec(sch, s.gran)
	tCodec := model.NewKeyCodec(sch, t.gran)
	r, err := storage.OpenGuarded(s.path, ev.guard)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	w, outPath, err := ev.spool("mj", sch)
	if err != nil {
		return nil, err
	}
	var rec model.Record
	out := model.Record{Dims: make([]int64, sch.NumDims()), Ms: make([]float64, 1)}
	codes := make([]int64, sch.NumDims())
	for {
		ok, nerr := r.Next(&rec)
		if nerr != nil {
			w.Close()
			return nil, nerr
		}
		if !ok {
			break
		}
		sk := keyOf(sCodec, sch, s.gran, rec.Dims)
		a := e.Agg.New()
		switch e.Cond.Kind {
		case core.MatchSelf:
			if v, ok := tMap[sCodec.UpTo(sk, tCodec)]; ok {
				a.Update(v)
			}
		case core.MatchParentChild:
			for d := 0; d < sch.NumDims(); d++ {
				codes[d] = sch.Dim(d).Up(s.gran[d], t.gran[d], rec.Dims[d])
			}
			if v, ok := tMap[keyOf(tCodec, sch, t.gran, codes)]; ok {
				a.Update(v)
			}
		case core.MatchChildParent:
			if ca, ok := cpAggs[sk]; ok {
				a = ca
			}
		case core.MatchSibling:
			forEachWindowKey(sCodec, sk, e.Cond.Windows, func(nk model.Key) {
				if v, ok := tMap[nk]; ok {
					a.Update(v)
				}
			})
		}
		copy(out.Dims, rec.Dims)
		out.Ms[0] = a.Final()
		if err := w.Write(&out); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := ev.noteSpooled(w.Count(), sch.NumDims()+1); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &rel{path: outPath, gran: s.gran, codec: sCodec}, nil
}

func forEachWindowKey(c *model.KeyCodec, k model.Key, windows []core.Window, visit func(model.Key)) {
	var rec func(cur model.Key, i int)
	rec = func(cur model.Key, i int) {
		if i == len(windows) {
			visit(cur)
			return
		}
		w := windows[i]
		base := c.CodeAt(k, w.Dim)
		for off := w.Lo; off <= w.Hi; off++ {
			rec(c.WithCodeAt(cur, w.Dim, base+off), i+1)
		}
	}
	rec(k, 0)
}

// evalCombineJoin is the n-ary LEFT OUTER equi-join of Table 4:
// hash every T_i, scan the spooled S, spool the output.
func (ev *evaluator) evalCombineJoin(e *core.Expr) (*rel, error) {
	sch := e.Schema()
	children := e.Children()
	s, err := ev.eval(children[0])
	if err != nil {
		return nil, err
	}
	tMaps := make([]map[model.Key]float64, len(children)-1)
	for i, ch := range children[1:] {
		// No memoization: each reference re-evaluates, like a nested
		// sub-query repeated in the SQL text.
		tr, err := ev.eval(ch)
		if err != nil {
			return nil, err
		}
		tMaps[i], err = ev.loadMap(tr)
		if err != nil {
			return nil, err
		}
	}
	sCodec := model.NewKeyCodec(sch, s.gran)
	r, err := storage.OpenGuarded(s.path, ev.guard)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	w, outPath, err := ev.spool("cj", sch)
	if err != nil {
		return nil, err
	}
	var rec model.Record
	out := model.Record{Dims: make([]int64, sch.NumDims()), Ms: make([]float64, 1)}
	vals := make([]float64, len(children))
	for {
		ok, nerr := r.Next(&rec)
		if nerr != nil {
			w.Close()
			return nil, nerr
		}
		if !ok {
			break
		}
		sk := keyOf(sCodec, sch, s.gran, rec.Dims)
		vals[0] = rec.Ms[0]
		for i, m := range tMaps {
			if v, ok := m[sk]; ok {
				vals[i+1] = v
			} else {
				vals[i+1] = agg.Null()
			}
		}
		copy(out.Dims, rec.Dims)
		out.Ms[0] = e.Combine.Eval(vals)
		if err := w.Write(&out); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := ev.noteSpooled(w.Count(), sch.NumDims()+1); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &rel{path: outPath, gran: s.gran, codec: sCodec}, nil
}
