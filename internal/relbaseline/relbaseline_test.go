package relbaseline

import (
	"path/filepath"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/storage"
)

func setup(t *testing.T) (*model.Schema, *core.Compiled, string, string) {
	t.Helper()
	s, recs, err := gen.SynthRecords(2000, gen.SynthConfig{Dims: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(fact, 2, 1, recs); err != nil {
		t.Fatal(err)
	}
	all := model.LevelALL
	c, err := core.NewWorkflow(s).
		Basic("cnt", model.Gran{1, 1}, agg.Count, -1).
		Rollup("up", model.Gran{2, all}, "cnt", agg.Sum).
		Sliding("win", "up", agg.Avg, []core.Window{{Dim: 0, Lo: -1, Hi: 1}}).
		Combine("ratio", []string{"up", "win"}, core.Ratio(0, 1)).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return s, c, fact, dir
}

func TestRunMeasuresSubset(t *testing.T) {
	_, c, fact, dir := setup(t)
	full, err := Run(c, fact, Options{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := RunMeasures(c, fact, []string{"ratio"}, Options{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Tables) != 1 {
		t.Fatalf("subset returned %d tables", len(sub.Tables))
	}
	if !full.Tables["ratio"].Equal(sub.Tables["ratio"], 1e-9) {
		t.Fatal("subset evaluation differs from full run")
	}
	// The full run recomputes everything per measure: strictly more
	// sorts than the single-measure run.
	if full.Stats.Sorts <= sub.Stats.Sorts {
		t.Errorf("full run sorts %d <= subset sorts %d; no per-measure recomputation?",
			full.Stats.Sorts, sub.Stats.Sorts)
	}
	if sub.Stats.Materials == 0 || sub.Stats.RowsSpooled == 0 {
		t.Errorf("materialization stats empty: %+v", sub.Stats)
	}
	if sub.Stats.TotalTime <= 0 {
		t.Errorf("total time not recorded")
	}
}

func TestSpoolCleanup(t *testing.T) {
	_, c, fact, dir := setup(t)
	if _, err := RunMeasures(c, fact, []string{"up"}, Options{TempDir: dir}); err != nil {
		t.Fatal(err)
	}
	// Only the fact file should remain.
	entries, err := filepath.Glob(filepath.Join(dir, "awra-rel-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("leftover spool files: %v", entries)
	}
}

func TestMissingFactFile(t *testing.T) {
	_, c, _, dir := setup(t)
	if _, err := Run(c, filepath.Join(dir, "missing.rec"), Options{TempDir: dir}); err == nil {
		t.Fatal("missing fact file accepted")
	}
}

func TestFactSelectionMaterialized(t *testing.T) {
	s, _, fact, dir := setup(t)
	c, err := core.NewWorkflow(s).
		Basic("filtered", model.Gran{1, model.LevelALL}, agg.Count, -1,
			core.Where(core.MWhere(0, core.Gt, 50))).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, fact, Options{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FactScans < 2 {
		t.Errorf("sigma(D) should scan + re-read the fact file: %+v", res.Stats)
	}
	if len(res.Tables["filtered"].Rows) == 0 {
		t.Error("filter dropped everything unexpectedly")
	}
}
