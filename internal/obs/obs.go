// Package obs is the zero-dependency observability layer shared by
// every evaluator: hierarchical spans covering the query lifecycle
// (query -> optimize -> sort -> runs/merge -> scan -> finalize ->
// combine), a registry of named counters and gauges, and exporters
// (JSON snapshot, Prometheus text format, expvar view, and a
// human-readable span tree).
//
// The paper's evaluation (Section 7) is built on per-phase costs —
// sort vs. scan time, live-cell footprint, early-flush effectiveness —
// and every engine here reports those costs through one shared
// vocabulary instead of per-engine ad-hoc structs.
//
// A nil *Recorder is a valid no-op recorder: every method on Recorder,
// Span, Counter, and Gauge is nil-safe, so instrumented code threads a
// possibly-nil recorder without branching and hot loops pay one
// pointer check at most. Engines keep per-record tallies in plain
// local fields and publish them to the recorder only at phase
// boundaries, so instrumentation never touches the scan loop.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Standard metric names. Every engine publishes the same vocabulary so
// snapshots are comparable across evaluators and across PRs.
const (
	// MRecordsScanned counts fact records consumed by the scan phase.
	MRecordsScanned = "records_scanned"
	// MCellsCreated counts hash-table entries (live cells) created.
	MCellsCreated = "cells_created"
	// MCellsFinalized counts cells flushed into output tables.
	MCellsFinalized = "cells_finalized"
	// MFlushBatches counts watermark-triggered finalization batches.
	MFlushBatches = "flush_batches"
	// MWatermarkAdvances counts watermark threshold advances across
	// all arcs of all measure nodes.
	MWatermarkAdvances = "watermark_advances"
	// MSpillEvents counts out-of-core events: external-sort runs
	// written to disk, hash-table spills, and spooled intermediates.
	MSpillEvents = "spill_events"
	// MSpillBytes counts the bytes those events wrote.
	MSpillBytes = "spill_bytes"
	// MSpilledEntries counts hash entries serialized by spills.
	MSpilledEntries = "spilled_entries"
	// MHeapComparisons counts comparisons made by the external merge's
	// k-way heap.
	MHeapComparisons = "heap_comparisons"
	// MSortRuns counts sorted runs produced by external sorts.
	MSortRuns = "sort_runs"
	// MPasses counts sort/scan passes (multi-pass engine).
	MPasses = "passes"
	// MPartitions counts parallel partitions (partscan engine).
	MPartitions = "partitions"
	// MFactScans counts end-to-end reads of the fact file
	// (relational baseline).
	MFactScans = "fact_scans"
	// MOptKeysScored counts candidate sort keys the optimizer scored.
	MOptKeysScored = "opt_keys_scored"
	// MQueriesCanceled counts queries that ended with cancellation or a
	// deadline instead of completing.
	MQueriesCanceled = "queries_canceled"
	// MRowsCorruptSkipped counts checksum-failing rows skipped in
	// degraded mode (QueryOptions.SkipCorruptRows).
	MRowsCorruptSkipped = "rows_corrupt_skipped"
	// MBudgetRejections counts queries rejected by a hard resource
	// guardrail (live cells, result rows, spill bytes).
	MBudgetRejections = "budget_rejections"
	// MFallbackSwitches counts EngineAuto runs that fell back from
	// sort/scan to multi-pass after the live-cell guardrail tripped.
	MFallbackSwitches = "fallback_engine_switches"
	// MShardsPlanned counts shards planned by the sharded sort/scan
	// engine.
	MShardsPlanned = "shards_planned"

	// Hot-path instrumentation family: batch-granularity tallies from
	// the chunked scan reader (internal/exec/scan) and the open-
	// addressing cell tables (internal/exec/cellmap). Engines publish
	// them once per phase boundary from plain struct fields — the scan
	// loop itself never touches the recorder.

	// MScanChunks counts read chunks consumed by batched fact reads.
	MScanChunks = "scan_chunks"
	// MScanBytes counts bytes filled into read-chunk buffers.
	MScanBytes = "scan_bytes"
	// MCellTableGrows counts cell-table doublings (rehashes) across all
	// measure nodes.
	MCellTableGrows = "cellmap_grows"

	// GScanBatchFill is the average read-chunk fill ratio in permille
	// (1000 = every chunk completely full).
	GScanBatchFill = "scan_batch_fill_permille"
	// GCellProbeHWM is the longest linear-probe walk any cell-table
	// insert performed.
	GCellProbeHWM = "cellmap_probe_len_hwm"
	// GCellArenaBytes is the peak cell-key arena footprint in bytes,
	// summed across measure nodes.
	GCellArenaBytes = "cellmap_arena_bytes_hwm"

	// Serve metric family: published by the always-on query service
	// (internal/serve) so its admission, retry, and drain behavior is
	// observable through the same registry as engine metrics.

	// MServeRequests counts query requests received (before admission).
	MServeRequests = "serve_requests"
	// MServeAdmitted counts requests that passed admission control.
	MServeAdmitted = "serve_admitted"
	// MServeQueued counts requests that waited in the admission queue
	// before being admitted or shed.
	MServeQueued = "serve_queued"
	// MServeShed counts requests rejected by admission control (tenant
	// limit, full queue, queue-wait timeout, shedding, or draining) —
	// the 429/503 responses.
	MServeShed = "serve_shed"
	// MServeRetries counts transient-fault retries of admitted queries.
	MServeRetries = "serve_retries"
	// MServeDegraded counts queries executed under overload-tightened
	// budgets (the sortscan→multipass degradation ladder).
	MServeDegraded = "serve_degraded_runs"
	// MServeDrainCanceled counts in-flight queries canceled because the
	// drain deadline lapsed before they finished.
	MServeDrainCanceled = "serve_drain_canceled"

	// MServeCacheHits counts queries answered from the serve result
	// cache without executing (they bypass admission slots entirely).
	MServeCacheHits = "serve_cache_hits"
	// MServeCacheMisses counts cache lookups that found no valid entry
	// (including entries invalidated by a changed input file).
	MServeCacheMisses = "serve_cache_misses"
	// MServeCacheEvictions counts entries evicted by the LRU/byte-budget
	// policy (invalidations are counted separately).
	MServeCacheEvictions = "serve_cache_evictions"
	// MServeCacheInvalidations counts entries dropped because their
	// collection's file fingerprint changed.
	MServeCacheInvalidations = "serve_cache_invalidations"
	// MShareBatches counts merged scan-sharing runs: one per batch of
	// concurrently admitted compatible queries executed as a single
	// fact-table pass.
	MShareBatches = "scan_share_batches"
	// MShareBatchedQueries counts queries answered by a scan-sharing
	// batch they did not lead (followers fanned out from a merged run,
	// including join-in-flight duplicates).
	MShareBatchedQueries = "scan_share_batched_queries"

	// GServeCacheEntries is the current number of cached result sets.
	GServeCacheEntries = "serve_cache_entries"
	// GServeCacheBytes is the estimated byte footprint of cached tables.
	GServeCacheBytes = "serve_cache_bytes"

	// GServeActive is the number of admitted queries currently running.
	GServeActive = "serve_active_queries"
	// GServeQueueDepth is the current admission-queue depth.
	GServeQueueDepth = "serve_queue_depth"
	// GServeOverloadLevel is the overload controller's current level
	// (0 = normal, 1 = degraded budgets, 2 = shedding).
	GServeOverloadLevel = "serve_overload_level"

	// GLiveCellsHWM is the high-water mark of simultaneously live hash
	// entries across all measure nodes.
	GLiveCellsHWM = "live_cells_hwm"
	// GHashBytesHWM is the high-water mark of estimated hash-table
	// bytes.
	GHashBytesHWM = "hashtable_bytes_hwm"
	// GOptBestBytes is the optimizer's estimated footprint of the
	// chosen plan.
	GOptBestBytes = "opt_best_bytes"
	// GShardSkew is the largest shard's record count over the mean
	// shard size, in permille (1000 = perfectly balanced), from the
	// sharded sort/scan split.
	GShardSkew = "shard_skew_ratio"
)

// Standard span names, mapping to the paper's evaluation phases (see
// DESIGN.md for the correspondence with Tables 7-8).
const (
	SpanQuery     = "query"     // whole evaluation
	SpanOptimize  = "optimize"  // Section 6 sort-order search
	SpanSort      = "sort"      // external sort (Table 7 line 2)
	SpanSortRuns  = "runs"      // run generation
	SpanMerge     = "merge"     // k-way merge
	SpanScan      = "scan"      // the streaming scan (Table 7 lines 3-7)
	SpanFinalize  = "finalize"  // end-of-stream flush (Table 7 line 8)
	SpanCombine   = "combine"   // composite/combine phase
	SpanSplit     = "split"     // partscan/shardscan fact-file split
	SpanPartition = "partition" // one partscan worker's sort/scan subtree
	SpanShard     = "shard"     // one shardscan worker's sort/scan subtree
	SpanSpill     = "spill_merge"
	SpanPass      = "pass"    // one multipass sort/scan iteration
	SpanMeasure   = "measure" // one relational-baseline measure query
)

// Recorder collects spans and metrics for one query (or one process).
// The zero value is not usable; construct with New. A nil Recorder is
// a valid no-op recorder.
//
// A Recorder may be shared across goroutines: counters and gauges are
// atomic, and the span tree is guarded by one mutex (span creation and
// completion are phase-boundary events, never per-record).
type Recorder struct {
	mu   sync.Mutex
	root *Span
	reg  registry
	// shared, when non-nil, is the recorder owning the registry and
	// span tree this view writes into (set by At).
	shared *Recorder
}

// New creates an empty Recorder whose root span starts now.
func New() *Recorder {
	r := &Recorder{}
	r.root = &Span{rec: r, start: time.Now()}
	r.reg.init()
	return r
}

// Start opens a top-level span. Nil-safe.
func (r *Recorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	return r.root.Start(name)
}

// At returns a view of the recorder rooted at span s: it shares the
// metrics registry and the span tree, but Start creates children of s.
// Engines use it to nest their phase spans under a caller's span
// (e.g. each partscan partition's sort/scan under that partition's
// span). Nil-safe; At(nil) returns r itself.
func (r *Recorder) At(s *Span) *Recorder {
	if r == nil || s == nil {
		return r
	}
	return &Recorder{root: s, shared: s.rec.owner()}
}

func (r *Recorder) owner() *Recorder {
	if r == nil {
		return nil
	}
	if r.shared != nil {
		return r.shared
	}
	return r
}

// Span is one timed phase. All methods are nil-safe.
type Span struct {
	rec      *Recorder
	parent   *Span
	name     string
	start    time.Time
	duration time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
	// total/done track work-unit progress (typically records; fixed
	// width rows make the total exact from the file size). Atomic so
	// scan loops can update them at guard strides without taking the
	// recorder mutex.
	total atomic.Int64
	done  atomic.Int64
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	r := s.rec
	child := &Span{rec: r, parent: s, name: name, start: time.Now()}
	r.mu.Lock()
	s.children = append(s.children, child)
	r.mu.Unlock()
	return child
}

// End closes the span, fixing its duration. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	if !s.ended {
		s.duration = time.Since(s.start)
		s.ended = true
	}
	s.rec.mu.Unlock()
}

// Duration returns the span's duration: final if ended, the running
// elapsed time otherwise. Nil-safe (returns 0).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.ended {
		return s.duration
	}
	return time.Since(s.start)
}

// Name returns the span's name. Nil-safe.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetTotal declares the span's total amount of work in records (or
// other work units). Spans with a nonzero total contribute to in-flight
// progress reporting. Nil-safe.
func (s *Span) SetTotal(n int64) {
	if s == nil {
		return
	}
	s.total.Store(n)
}

// SetDone records absolute progress through the span's work. Scan
// loops call it at their existing guard strides (every 256 records),
// never per record. Nil-safe.
func (s *Span) SetDone(n int64) {
	if s == nil {
		return
	}
	s.done.Store(n)
}

// Progress returns (done, total) work units. Nil-safe (zeros).
func (s *Span) Progress() (done, total int64) {
	if s == nil {
		return 0, 0
	}
	return s.done.Load(), s.total.Load()
}

// Ended reports whether the span has been closed. Nil-safe.
func (s *Span) Ended() bool {
	if s == nil {
		return true
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	return s.ended
}

// SetAttr annotates the span. Later writes to the same key win.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}
