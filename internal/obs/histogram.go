package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Standard histogram names. Values are observed in the unit the name
// declares; buckets are fixed powers of two, so recording is one
// bits.Len plus two atomic adds — cheap enough for per-query (never
// per-record) observation.
const (
	// HQueryLatencyUs is the end-to-end query latency distribution in
	// microseconds, labeled {engine}.
	HQueryLatencyUs = "query_latency_us"
	// HPhaseLatencyUs is the per-phase latency distribution in
	// microseconds, labeled {phase} (sort, scan, optimize, ...).
	HPhaseLatencyUs = "phase_latency_us"
	// HRowsPerSec is the scan-throughput distribution in fact records
	// per second, labeled {engine}.
	HRowsPerSec = "query_rows_per_sec"
	// HServeLatencyUs is the serve layer's end-to-end request latency
	// (admission wait + all execution attempts) in microseconds,
	// labeled {outcome}.
	HServeLatencyUs = "serve_request_latency_us"
	// HServeWaitUs is the admission-queue wait distribution in
	// microseconds for requests that had to queue.
	HServeWaitUs = "serve_admission_wait_us"
)

// histMaxBucket is the number of finite buckets: values land in bucket
// k when 2^(k-1) < v <= 2^k (bucket 0 holds v <= 1), so 63 buckets
// cover every positive int64.
const histMaxBucket = 63

// Histogram is a fixed log-scale (powers-of-two) latency/throughput
// distribution. Observe is lock-free — one bits.Len64 and three atomic
// adds — so it is safe on any path that runs at most once per query
// phase. A nil Histogram is a valid no-op.
type Histogram struct {
	name   string
	labels []Attr
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histMaxBucket + 1]atomic.Int64
}

// bucketIndex maps a value to its bucket: ceil(log2(v)), clamped.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(v - 1)) // smallest k with 2^k >= v
	if idx > histMaxBucket {
		idx = histMaxBucket
	}
	return idx
}

// bucketUpper is the inclusive upper bound of bucket idx.
func bucketUpper(idx int) int64 {
	if idx >= histMaxBucket {
		return math.MaxInt64
	}
	return int64(1) << uint(idx)
}

// Observe records one value. Negative values count as zero. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.bucket[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations. Nil-safe (returns 0).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Nil-safe (returns 0).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramBucket is one non-empty bucket in a snapshot: Count
// observations with value <= Le.
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of one histogram. Buckets
// carry per-bucket (non-cumulative) counts for only the non-empty
// buckets; exporters re-cumulate.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// snapshot captures the histogram's current state. Concurrent Observe
// calls may tear count vs. buckets by one observation; snapshots are
// monitoring reads, not barriers.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name, Count: h.count.Load(), Sum: h.sum.Load()}
	if len(h.labels) > 0 {
		s.Labels = make(map[string]string, len(h.labels))
		for _, a := range h.labels {
			s.Labels[a.Key] = a.Value
		}
	}
	for i := range h.bucket {
		if n := h.bucket[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: bucketUpper(i), Count: n})
		}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts: it returns the upper bound of the bucket containing the
// q-th observation, interpolated linearly inside the bucket. Returns
// 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, b := range s.Buckets {
		prev := cum
		cum += float64(b.Count)
		if cum >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(s.Buckets[i-1].Le)
			}
			hi := float64(b.Le)
			if b.Count == 0 {
				return hi
			}
			frac := (rank - prev) / float64(b.Count)
			return lo + frac*(hi-lo)
		}
	}
	return float64(s.Buckets[len(s.Buckets)-1].Le)
}

// histKey builds the registry key for a labeled histogram: the name
// plus the sorted label pairs.
func histKey(name string, labels []Attr) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, a := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", a.Key, a.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Histogram returns (creating if needed) the named histogram with the
// given label pairs ("engine", "sortscan", ...). Label keys are sorted
// into a canonical series identity, so call order does not split
// series. Nil recorders return nil histograms. Like Counter/Gauge,
// resolution takes the registry mutex — resolve once per query, not
// per record.
func (r *Recorder) Histogram(name string, labelPairs ...string) *Histogram {
	o := r.owner()
	if o == nil {
		return nil
	}
	labels := make([]Attr, 0, len(labelPairs)/2)
	for i := 0; i+1 < len(labelPairs); i += 2 {
		labels = append(labels, Attr{Key: labelPairs[i], Value: labelPairs[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	key := histKey(name, labels)
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	if o.reg.histograms == nil {
		o.reg.histograms = make(map[string]*Histogram)
	}
	h, ok := o.reg.histograms[key]
	if !ok {
		h = &Histogram{name: name, labels: labels}
		o.reg.histograms[key] = h
	}
	return h
}

// HistogramSnapshots returns a snapshot of every registered histogram,
// sorted by series identity. Nil-safe (returns nil).
func (r *Recorder) HistogramSnapshots() []HistogramSnapshot {
	o := r.owner()
	if o == nil {
		return nil
	}
	o.reg.mu.Lock()
	keys := make([]string, 0, len(o.reg.histograms))
	for k := range o.reg.histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = o.reg.histograms[k]
	}
	o.reg.mu.Unlock()
	if len(hs) == 0 {
		return nil
	}
	out := make([]HistogramSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.snapshot()
	}
	return out
}
