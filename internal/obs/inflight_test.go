package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestInflightLifecycle(t *testing.T) {
	reg := &Inflight{}
	r := New()
	q := reg.Begin("test query", r, nil)
	if q.ID() == 0 {
		t.Fatal("want nonzero query ID")
	}
	span := r.Start(SpanQuery)
	q.SetSpan(span)
	q.SetEngine("sortscan")

	scan := r.At(span).Start(SpanScan)
	scan.SetTotal(1000)
	scan.SetDone(250)

	snaps := reg.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 in-flight query, got %d", len(snaps))
	}
	s := snaps[0]
	if s.Label != "test query" || s.Engine != "sortscan" {
		t.Errorf("label/engine: %+v", s)
	}
	if s.Phase != SpanScan {
		t.Errorf("phase should be the deepest running span, got %q", s.Phase)
	}
	if s.Done != 250 || s.Total != 1000 || s.Progress != 0.25 {
		t.Errorf("progress: done=%d total=%d p=%v", s.Done, s.Total, s.Progress)
	}

	// Progress is monotonically non-decreasing even if the denominator
	// grows (a second work span appears).
	scan2 := r.At(span).Start(SpanScan)
	scan2.SetTotal(9000)
	s2 := reg.Snapshot()[0]
	if s2.Progress < s.Progress {
		t.Errorf("progress went backwards: %v -> %v", s.Progress, s2.Progress)
	}

	scan.End()
	scan2.End()
	span.End()
	q.Finish()
	q.Finish() // idempotent
	if got := reg.Snapshot(); len(got) != 0 {
		t.Fatalf("finished query still listed: %+v", got)
	}
}

func TestInflightNilSafety(t *testing.T) {
	var reg *Inflight
	q := reg.Begin("x", nil, nil)
	q.SetEngine("e")
	q.SetSpan(nil)
	q.Finish()
	if q.ID() != 0 {
		t.Fatal("nil registry handle should have ID 0")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

func TestInflightWriteJSON(t *testing.T) {
	reg := &Inflight{}
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	// Empty registry serializes as an empty array, not null.
	if !strings.Contains(b.String(), `"queries": []`) {
		t.Fatalf("empty registry JSON: %s", b.String())
	}

	r := New()
	q := reg.Begin("q1", r, nil)
	defer q.Finish()
	b.Reset()
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"label": "q1"`) {
		t.Fatalf("registered query missing from JSON: %s", b.String())
	}
}

func TestWorkerProgressNames(t *testing.T) {
	reg := &Inflight{}
	r := New()
	span := r.Start(SpanQuery)
	q := reg.Begin("sharded", r, span)
	defer q.Finish()
	for i := 0; i < 2; i++ {
		sh := r.At(span).Start(SpanShard)
		sh.SetAttr("shard", string(rune('0'+i)))
		sc := r.At(sh).Start(SpanScan)
		sc.SetTotal(100)
		sc.SetDone(int64(10 * (i + 1)))
	}
	s := reg.Snapshot()[0]
	if len(s.Workers) != 2 {
		t.Fatalf("want 2 workers, got %+v", s.Workers)
	}
	if s.Workers[0].Name != "shard:0" && s.Workers[1].Name != "shard:0" {
		t.Errorf("worker names should carry shard attrs: %+v", s.Workers)
	}
	if s.Done != 30 || s.Total != 200 {
		t.Errorf("summed progress: done=%d total=%d", s.Done, s.Total)
	}
}

func TestRunningSpanRendering(t *testing.T) {
	r := New()
	q := r.Start(SpanQuery)
	scan := r.At(q).Start(SpanScan)
	scan.SetTotal(100)
	scan.SetDone(40)

	tree := r.FormatTree()
	if !strings.Contains(tree, "(running)") {
		t.Errorf("FormatTree should mark un-ended spans:\n%s", tree)
	}
	if !strings.Contains(tree, "40/100") {
		t.Errorf("FormatTree should show progress on running spans:\n%s", tree)
	}

	snap := r.Snapshot()
	root := snap.Spans[0]
	if !root.Running || root.DurationUs <= 0 {
		t.Errorf("running span snapshot: running=%v dur=%d", root.Running, root.DurationUs)
	}
	if root.Children[0].Done != 40 || root.Children[0].Total != 100 {
		t.Errorf("span snapshot progress: %+v", root.Children[0])
	}

	scan.End()
	q.End()
	tree = r.FormatTree()
	if strings.Contains(tree, "(running)") {
		t.Errorf("ended spans must not be marked running:\n%s", tree)
	}
	if s := r.Snapshot().Spans[0]; s.Running {
		t.Errorf("ended span snapshot still running")
	}
}

// TestInflightSnapshotWhilePublishing races registry snapshots against
// span progress updates and node-stat publishing — run with -race.
func TestInflightSnapshotWhilePublishing(t *testing.T) {
	reg := &Inflight{}
	r := New()
	span := r.Start(SpanQuery)
	q := reg.Begin("stress", r, span)
	defer q.Finish()
	scan := r.At(span).Start(SpanScan)
	scan.SetTotal(10000)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 10000; i++ {
			if i&255 == 0 {
				scan.SetDone(i)
				r.MergeNodeStats(NodeStats{Node: "cnt", RecordsIn: 256})
			}
		}
		scan.End()
	}()
	var prev float64
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			snaps := reg.Snapshot()
			if len(snaps) != 1 {
				t.Errorf("query missing mid-run")
				return
			}
			if snaps[0].Progress < prev {
				t.Errorf("progress regressed: %v -> %v", prev, snaps[0].Progress)
				return
			}
			prev = snaps[0].Progress
		}
	}()
	wg.Wait()
}
