package flight

import "strings"

// W3C trace-context (traceparent) support: the serve layer ingests a
// caller-supplied traceparent header so a distributed trace spans the
// client and the query engine, and echoes one back so clients without
// tracing infrastructure still get a correlation handle.

// Traceparent is the HTTP header name.
const Traceparent = "traceparent"

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// value ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>").
// Unknown versions with the same shape are accepted, per spec; an
// all-zero trace ID is invalid.
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", false
	}
	ver, id := parts[0], strings.ToLower(parts[1])
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return "", false
	}
	if len(id) != 32 || !isHex(id) || id == strings.Repeat("0", 32) {
		return "", false
	}
	if len(parts[2]) != 16 || !isHex(parts[2]) || len(parts[3]) != 2 || !isHex(parts[3]) {
		return "", false
	}
	return id, true
}

// FormatTraceparent renders a traceparent header value for a trace ID,
// with this process as the parent span and the sampled flag set (the
// flight recorder made a retention decision, which is what the flag
// communicates downstream).
func FormatTraceparent(traceID string) string {
	if len(traceID) != 32 || !isHex(traceID) {
		return ""
	}
	// The parent-id nibble-folds the trace ID: deterministic, non-zero
	// for any valid trace ID, and good enough absent real span IDs.
	parent := strings.ToLower(traceID[:16])
	if parent == strings.Repeat("0", 16) {
		parent = "0000000000000001" // spec forbids an all-zero parent-id
	}
	return "00-" + strings.ToLower(traceID) + "-" + parent + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}
