package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"awra/internal/qlog"
)

func mkTrace(id, outcome string, durUs int64) *Trace {
	return &Trace{
		ID:         id,
		Outcome:    outcome,
		DurationUs: durUs,
		Attempts:   []Attempt{{Outcome: outcome, DurationUs: durUs}},
	}
}

func reasons(t Trace) string { return strings.Join(t.PinReasons, ",") }

func TestPinOnBadOutcomes(t *testing.T) {
	for _, tc := range []struct {
		outcome string
		reason  string
	}{
		{qlog.OutcomeError, PinError},
		{qlog.OutcomeBudget, PinBudget},
		{qlog.OutcomeCanceled, PinCancel},
	} {
		r := NewRing(8, 4)
		got, pinned := r.Commit(mkTrace("t-"+tc.outcome, tc.outcome, 100))
		if !pinned || !got.Pinned {
			t.Fatalf("%s: not pinned", tc.outcome)
		}
		if reasons(got) != tc.reason {
			t.Fatalf("%s: reasons %q, want %q", tc.outcome, reasons(got), tc.reason)
		}
	}
}

func TestHealthySampling(t *testing.T) {
	r := NewRing(64, 4)
	retained := 0
	for i := 0; i < 16; i++ {
		if _, ok := r.Get(fmt.Sprintf("h%d", i)); ok {
			t.Fatal("trace present before commit")
		}
		got, pinned := r.Commit(mkTrace(fmt.Sprintf("h%d", i), qlog.OutcomeOK, 50))
		if pinned {
			t.Fatalf("healthy trace %d pinned: %v", i, got.PinReasons)
		}
		if got.ID != "" {
			retained++
			if !got.Sampled {
				t.Fatalf("retained healthy trace %d not marked sampled", i)
			}
		}
	}
	// 1-in-4 sampling over 16 commits, first commit always retained.
	if retained != 4 {
		t.Fatalf("retained %d of 16 healthy traces, want 4", retained)
	}
	if _, ok := r.Get("h0"); !ok {
		t.Fatal("first commit should always win the sampling draw")
	}
}

func TestRetryMergesIntoOneTrace(t *testing.T) {
	r := NewRing(8, 1)
	first := mkTrace("tr", qlog.OutcomeError, 80)
	first.Attempts[0].Error = "transient read fault"
	r.Commit(first)
	second := mkTrace("tr", qlog.OutcomeOK, 120)
	got, pinned := r.Commit(second)
	if !pinned {
		t.Fatal("retried trace not pinned")
	}
	if len(got.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2 (one trace, N attempts)", len(got.Attempts))
	}
	if got.Attempts[0].Seq != 1 || got.Attempts[1].Seq != 2 {
		t.Fatalf("attempt seqs = %d,%d", got.Attempts[0].Seq, got.Attempts[1].Seq)
	}
	// Top-level fields follow the final attempt; pin reasons accumulate.
	if got.Outcome != qlog.OutcomeOK || got.DurationUs != 120 {
		t.Fatalf("merged top-level = %s/%d", got.Outcome, got.DurationUs)
	}
	for _, want := range []string{PinError, PinRetried} {
		if !strings.Contains(reasons(got), want) {
			t.Fatalf("reasons %q missing %q", reasons(got), want)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("ring holds %d traces, want 1", r.Len())
	}
}

func TestSlowPinAgainstOperatorThreshold(t *testing.T) {
	r := NewRing(8, 1)
	r.SetSlowThreshold(1000)
	fast, _ := r.Commit(mkTrace("fast", qlog.OutcomeOK, 500))
	if fast.Pinned {
		t.Fatal("fast trace pinned")
	}
	slow, pinned := r.Commit(mkTrace("slow", qlog.OutcomeOK, 1500))
	if !pinned || reasons(slow) != PinSlow {
		t.Fatalf("slow trace: pinned=%v reasons=%q", pinned, reasons(slow))
	}
	log := r.Slow(0)
	if len(log) != 1 || log[0].ID != "slow" {
		t.Fatalf("slow log = %+v, want [slow]", log)
	}
	if log[0].Path != "/debug/aw/traces/slow" {
		t.Fatalf("slow log path = %q", log[0].Path)
	}
}

func TestInternalP99Fallback(t *testing.T) {
	r := NewRing(512, 1)
	// Fill the window with uniform fast traces, then one outlier: once
	// the window has signal, the outlier lands at/above its p99.
	for i := 0; i < minSlowWindow; i++ {
		r.Commit(mkTrace(fmt.Sprintf("w%d", i), qlog.OutcomeOK, 100))
	}
	if th := r.SlowThresholdUs(); th == 0 {
		t.Fatal("p99 fallback threshold still 0 after warm-up")
	}
	got, pinned := r.Commit(mkTrace("outlier", qlog.OutcomeOK, 10000))
	if !pinned || !strings.Contains(reasons(got), PinSlow) {
		t.Fatalf("outlier: pinned=%v reasons=%q", pinned, reasons(got))
	}
}

func TestEvictionPrefersUnpinned(t *testing.T) {
	r := NewRing(3, 1)
	r.Commit(mkTrace("bad1", qlog.OutcomeError, 10))
	r.Commit(mkTrace("ok1", qlog.OutcomeOK, 10))
	r.Commit(mkTrace("bad2", qlog.OutcomeError, 10))
	r.Commit(mkTrace("bad3", qlog.OutcomeError, 10)) // evicts ok1, not bad1
	if _, ok := r.Get("ok1"); ok {
		t.Fatal("unpinned trace survived eviction over pinned ones")
	}
	for _, id := range []string{"bad1", "bad2", "bad3"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("pinned trace %s evicted while an unpinned one existed", id)
		}
	}
	// All pinned: the oldest pinned trace goes (bounded memory wins).
	r.Commit(mkTrace("bad4", qlog.OutcomeError, 10))
	if _, ok := r.Get("bad1"); ok {
		t.Fatal("oldest pinned trace survived an all-pinned eviction")
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d, want cap 3", r.Len())
	}
}

func TestRestoreLastWordWins(t *testing.T) {
	r := NewRing(8, 1)
	r.Restore(mkTrace("p", qlog.OutcomeError, 100))
	merged := mkTrace("p", qlog.OutcomeOK, 150)
	merged.Attempts = append(merged.Attempts, Attempt{Outcome: qlog.OutcomeOK})
	r.Restore(merged)
	got, ok := r.Get("p")
	if !ok || len(got.Attempts) != 2 || got.Outcome != qlog.OutcomeOK {
		t.Fatalf("restored trace = %+v", got)
	}
	if r.Len() != 1 {
		t.Fatalf("restore of the same ID duplicated the entry: len=%d", r.Len())
	}
}

func TestWriteJSONEndpoints(t *testing.T) {
	r := NewRing(8, 1)
	r.SetSlowThreshold(100)
	r.Commit(mkTrace("a", qlog.OutcomeBudget, 500))
	var buf bytes.Buffer
	if err := r.WriteListJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var list struct {
		Total  int       `json:"total"`
		Traces []Summary `json:"traces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 1 || len(list.Traces) != 1 || !list.Traces[0].Pinned {
		t.Fatalf("list payload = %+v", list)
	}
	buf.Reset()
	found, err := r.WriteTraceJSON(&buf, "a")
	if err != nil || !found {
		t.Fatalf("WriteTraceJSON: found=%v err=%v", found, err)
	}
	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != "a" || len(tr.Attempts) != 1 {
		t.Fatalf("trace payload = %+v", tr)
	}
	if found, _ := r.WriteTraceJSON(&buf, "missing"); found {
		t.Fatal("missing trace reported found")
	}
}

// TestConcurrentCommitSnapshotEvict drives commits (fresh IDs, merges,
// restores) against readers and JSON snapshots from many goroutines;
// run under -race this is the ring's concurrency proof.
func TestConcurrentCommitSnapshotEvict(t *testing.T) {
	r := NewRing(32, 4)
	const writers, readers, per = 8, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				outcome := qlog.OutcomeOK
				if i%3 == 0 {
					outcome = qlog.OutcomeError
				}
				// A shared ID across writers exercises attempt merging.
				id := fmt.Sprintf("w%d-%d", w, i)
				if i%7 == 0 {
					id = fmt.Sprintf("shared-%d", i)
				}
				r.Commit(mkTrace(id, outcome, int64(50+i)))
				if i%11 == 0 {
					r.Restore(mkTrace(fmt.Sprintf("restored-%d-%d", w, i), qlog.OutcomeBudget, 10))
				}
				if i%13 == 0 {
					r.SetSlowThreshold(int64(i))
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < per; i++ {
				r.List(10)
				r.Slow(10)
				r.Get(fmt.Sprintf("shared-%d", i%per))
				buf.Reset()
				_ = r.WriteListJSON(&buf, 5)
			}
		}()
	}
	wg.Wait()
	if r.Len() > 32 {
		t.Fatalf("ring exceeded its capacity: %d > 32", r.Len())
	}
	// Mutating a returned copy must not corrupt the retained trace.
	if got, ok := r.Get("shared-0"); ok {
		got.PinReasons = append(got.PinReasons[:0], "clobbered")
		got.Attempts = nil
		again, _ := r.Get("shared-0")
		if len(again.PinReasons) > 0 && again.PinReasons[0] == "clobbered" {
			t.Fatal("Get returned a shared slice, not a copy")
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 32 || !isHex(id) {
			t.Fatalf("trace ID %q not 32 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	h := FormatTraceparent(id)
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("round trip %q -> %q (ok=%v), want %q", h, got, ok, id)
	}
	for _, bad := range []string{
		"",
		"00-short-0123456789abcdef-01",
		"00-" + strings.Repeat("0", 32) + "-0123456789abcdef-01", // all-zero trace ID
		"ff-" + id + "-0123456789abcdef-01",                      // forbidden version
		"00-" + id + "-xyz-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted invalid traceparent %q", bad)
		}
	}
	// Uppercase hex and extra future fields are tolerated.
	up := "00-" + strings.ToUpper(id) + "-0123456789ABCDEF-01-extra"
	if got, ok := ParseTraceparent(up); !ok || got != id {
		t.Fatalf("uppercase/extended traceparent rejected: %q -> %q %v", up, got, ok)
	}
}
