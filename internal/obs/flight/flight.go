// Package flight is the query flight recorder: a bounded in-memory
// ring of completed query traces with tail-based retention. Every
// aw.Run* commits its finished trace — the finalized span tree with
// durations and attrs, per-node estimate-vs-actual profile, guard
// stats, engine, outcome, and retry-attempt chain — keyed by a stable
// trace ID that callers can supply (e.g. ingested from a W3C
// traceparent header) or let the library generate.
//
// Tail-based retention means the interesting tail is pinned: errored,
// canceled, budget-tripped, retried, and slow traces survive eviction
// preferentially, while healthy fast queries are probabilistically
// sampled so steady-state memory and publishing overhead stay near
// zero. "Slow" is judged against an operator-supplied threshold (the
// serve layer feeds its overload controller's sliding-window latency)
// with the ring's own sliding-window p99 as the fallback, so the
// recorder self-calibrates even without a serving layer.
//
// The ring is the queryable runtime artifact behind /debug/aw/traces,
// /debug/aw/traces/{id}, and /debug/aw/slow; pinned traces can be
// mirrored to a persistence sink (the aw history layer appends them to
// a rotating JSONL log) so post-mortems survive restarts.
package flight

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"awra/internal/obs"
	"awra/internal/qlog"
)

// Pin reasons recorded on a retained trace.
const (
	PinError   = "error"   // outcome error
	PinBudget  = "budget"  // budget-tripped
	PinCancel  = "canceled"
	PinRetried = "retried" // more than one attempt
	PinSlow    = "slow"    // duration at or above the slow threshold
)

// GuardStats is one attempt's resource-guard accumulators.
type GuardStats struct {
	ResultRows  int64 `json:"result_rows,omitempty"`
	SpillBytes  int64 `json:"spill_bytes,omitempty"`
	CorruptRows int64 `json:"corrupt_rows,omitempty"`
}

// Attempt is one execution attempt within a trace. A query retried
// after a transient fault commits one trace with N attempts — not N
// traces — so the retry chain reads as a single story.
type Attempt struct {
	Seq        int                `json:"seq"`
	Engine     string             `json:"engine,omitempty"`
	Outcome    string             `json:"outcome"`
	Error      string             `json:"error,omitempty"`
	DurationUs int64              `json:"duration_us"`
	Guard      GuardStats         `json:"guard,omitempty"`
	Nodes      []qlog.NodeProfile `json:"nodes,omitempty"`
	// Span is the attempt's finalized span tree (query root), with
	// durations, attrs, and per-span record progress.
	Span *obs.SpanSnapshot `json:"span,omitempty"`
}

// Trace is one completed query's flight record. Top-level fields
// reflect the latest attempt; the full chain is in Attempts.
type Trace struct {
	ID         string    `json:"trace_id"`
	Time       time.Time `json:"time"`
	RequestID  string    `json:"request_id,omitempty"`
	Label      string    `json:"label,omitempty"`
	Engine     string    `json:"engine,omitempty"`
	SortKey    string    `json:"sort_key,omitempty"`
	Outcome    string    `json:"outcome"`
	Error      string    `json:"error,omitempty"`
	DurationUs int64     `json:"duration_us"`
	Pinned     bool      `json:"pinned,omitempty"`
	PinReasons []string  `json:"pin_reasons,omitempty"`
	// Sampled marks a healthy fast trace retained by probabilistic
	// sampling rather than pinning.
	Sampled bool `json:"sampled,omitempty"`
	// ServedFrom marks a query answered without executing: "cache"
	// (serve result-cache hit) or "shared" (fanned out from a merged
	// scan-sharing run). Such traces have no engine attempts.
	ServedFrom string `json:"served_from,omitempty"`
	// SourceTraceID links back to the trace of the run that actually
	// computed the tables this query was served from.
	SourceTraceID string    `json:"source_trace_id,omitempty"`
	Attempts      []Attempt `json:"attempts,omitempty"`
}

// Summary is the list-view projection of a trace (no span trees), the
// row format of /debug/aw/traces.
type Summary struct {
	ID         string    `json:"trace_id"`
	Time       time.Time `json:"time"`
	RequestID  string    `json:"request_id,omitempty"`
	Label      string    `json:"label,omitempty"`
	Engine     string    `json:"engine,omitempty"`
	Outcome    string    `json:"outcome"`
	Error      string    `json:"error,omitempty"`
	DurationUs int64     `json:"duration_us"`
	Attempts   int       `json:"attempts"`
	Pinned     bool      `json:"pinned,omitempty"`
	PinReasons []string  `json:"pin_reasons,omitempty"`
	Sampled    bool      `json:"sampled,omitempty"`
	ServedFrom string    `json:"served_from,omitempty"`
	Path       string    `json:"path"`
}

// TracePath returns the debug-endpoint path for a trace ID — the
// link-ready form surfaced by in-flight snapshots and list views.
func TracePath(id string) string { return "/debug/aw/traces/" + id }

// DefaultCapacity bounds the default ring.
const DefaultCapacity = 256

// DefaultSampleN retains 1 in N healthy fast traces.
const DefaultSampleN = 16

// slowWindow is the ring's internal latency window for the p99
// fallback threshold; minSlowWindow gates it until it has signal.
const (
	slowWindow    = 256
	minSlowWindow = 32
)

// Ring is a bounded trace store with tail-based retention. All methods
// are safe for concurrent use and nil-safe (a nil ring drops commits
// and reports nothing), so callers thread it without branching.
type Ring struct {
	mu      sync.Mutex
	cap     int
	sampleN int64
	seq     int64 // commit counter driving deterministic sampling
	traces  map[string]*Trace
	order   []string // insertion order, oldest first
	// slowUs is the operator-supplied slow threshold (0 = unset); win
	// is the sliding duration window behind the p99 fallback.
	slowUs int64
	win    []int64
	pos    int
}

// NewRing builds a ring retaining up to capacity traces and sampling 1
// in sampleN healthy fast queries (0 picks the defaults).
func NewRing(capacity int, sampleN int64) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sampleN <= 0 {
		sampleN = DefaultSampleN
	}
	return &Ring{
		cap:     capacity,
		sampleN: sampleN,
		traces:  make(map[string]*Trace),
		win:     make([]int64, 0, slowWindow),
	}
}

// Default is the process-global flight recorder, mirroring
// obs.DefaultInflight: every aw.Run* commits here.
var Default = NewRing(0, 0)

// NewTraceID returns a fresh 32-hex-digit (16-byte) trace ID, the W3C
// trace-context format.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant non-zero
		// ID keeps the recorder functional (traces merge, nothing panics).
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// SetSlowThreshold sets the operator slow threshold in microseconds
// (0 reverts to the ring's internal p99 fallback). The serve layer
// feeds it from the overload controller's sliding latency window.
func (r *Ring) SetSlowThreshold(us int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.slowUs = us
	r.mu.Unlock()
}

// SlowThresholdUs returns the effective slow threshold: the operator
// value if set, else the internal window p99, else 0 (no slow pinning
// yet).
func (r *Ring) SlowThresholdUs() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slowThresholdLocked()
}

func (r *Ring) slowThresholdLocked() int64 {
	if r.slowUs > 0 {
		return r.slowUs
	}
	n := len(r.win)
	if n < minSlowWindow {
		return 0
	}
	s := make([]int64, n)
	copy(s, r.win)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := n * 99 / 100
	if idx >= n {
		idx = n - 1
	}
	return s[idx]
}

// Commit folds one finished attempt-bearing trace into the ring. A
// trace whose ID already exists absorbs the new attempts (the retry
// chain grows; top-level fields follow the latest attempt); otherwise
// the trace is inserted, evicting the oldest unpinned entry when full.
// It returns the retained state (a private copy) and whether the trace
// is pinned; a healthy fast trace that misses the sampling draw
// returns a zero Trace and false.
func (r *Ring) Commit(t *Trace) (Trace, bool) {
	if r == nil || t == nil || t.ID == "" {
		return Trace{}, false
	}
	if t.Time.IsZero() {
		t.Time = time.Now()
	}
	r.mu.Lock()
	r.seq++
	// Slide the duration window (every commit, pinned or not, so the
	// p99 fallback sees the true distribution).
	if len(r.win) < slowWindow {
		r.win = append(r.win, t.DurationUs)
	} else {
		r.win[r.pos] = t.DurationUs
	}
	r.pos = (r.pos + 1) % slowWindow

	existing := r.traces[t.ID]
	if existing != nil {
		// Merge: append attempts, renumbering the chain; latest attempt
		// wins the top-level fields.
		for i := range t.Attempts {
			a := t.Attempts[i]
			a.Seq = len(existing.Attempts) + 1
			existing.Attempts = append(existing.Attempts, a)
		}
		existing.Engine, existing.Outcome, existing.Error = t.Engine, t.Outcome, t.Error
		existing.DurationUs = t.DurationUs
		if t.SortKey != "" {
			existing.SortKey = t.SortKey
		}
		t = existing
	} else {
		for i := range t.Attempts {
			t.Attempts[i].Seq = i + 1
		}
	}
	r.pinLocked(t)
	if existing == nil {
		if !t.Pinned && !r.sampleLocked() {
			r.mu.Unlock()
			return Trace{}, false
		}
		t.Sampled = !t.Pinned
		r.insertLocked(t)
	} else if t.Pinned {
		t.Sampled = false
	}
	out := copyTrace(t)
	pinned := t.Pinned
	r.mu.Unlock()
	return out, pinned
}

// Restore inserts a replayed trace (e.g. from the persisted trace log)
// without sampling, window updates, or re-persisting. Later restores
// of the same ID supersede earlier ones (the log's last word wins).
func (r *Ring) Restore(t *Trace) {
	if r == nil || t == nil || t.ID == "" {
		return
	}
	r.mu.Lock()
	c := copyTrace(t)
	if _, ok := r.traces[t.ID]; ok {
		r.traces[t.ID] = &c
	} else {
		r.insertLocked(&c)
	}
	r.mu.Unlock()
}

// pinLocked re-evaluates a trace's pin state from its outcome, retry
// chain, and duration against the slow threshold. Pinning is sticky:
// reasons accumulate, a pinned trace never unpins.
func (r *Ring) pinLocked(t *Trace) {
	add := func(reason string) {
		for _, have := range t.PinReasons {
			if have == reason {
				return
			}
		}
		t.PinReasons = append(t.PinReasons, reason)
		t.Pinned = true
	}
	switch t.Outcome {
	case qlog.OutcomeError:
		add(PinError)
	case qlog.OutcomeBudget:
		add(PinBudget)
	case qlog.OutcomeCanceled:
		add(PinCancel)
	}
	if len(t.Attempts) > 1 {
		add(PinRetried)
	}
	if th := r.slowThresholdLocked(); th > 0 && t.DurationUs >= th {
		add(PinSlow)
	}
}

// sampleLocked draws the deterministic 1-in-N retention lot for a
// healthy fast trace. The very first commit always wins the draw, so a
// process that runs one query (the CLI case) retains its trace.
func (r *Ring) sampleLocked() bool {
	if r.sampleN <= 1 {
		return true
	}
	return r.seq%r.sampleN == 1
}

// insertLocked adds a new trace, evicting to capacity: the oldest
// unpinned trace first; if everything is pinned, the oldest pinned one
// (bounded memory wins over retention).
func (r *Ring) insertLocked(t *Trace) {
	r.traces[t.ID] = t
	r.order = append(r.order, t.ID)
	for len(r.order) > r.cap {
		victim := -1
		for i, id := range r.order {
			if !r.traces[id].Pinned {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(r.traces, r.order[victim])
		r.order = append(r.order[:victim], r.order[victim+1:]...)
	}
}

func copyTrace(t *Trace) Trace {
	c := *t
	c.Attempts = append([]Attempt(nil), t.Attempts...)
	c.PinReasons = append([]string(nil), t.PinReasons...)
	return c
}

// Get returns a private copy of the trace with the given ID.
func (r *Ring) Get(id string) (Trace, bool) {
	if r == nil {
		return Trace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[id]
	if !ok {
		return Trace{}, false
	}
	return copyTrace(t), true
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

func summarize(t *Trace) Summary {
	return Summary{
		ID:         t.ID,
		Time:       t.Time,
		RequestID:  t.RequestID,
		Label:      t.Label,
		Engine:     t.Engine,
		Outcome:    t.Outcome,
		Error:      t.Error,
		DurationUs: t.DurationUs,
		Attempts:   len(t.Attempts),
		Pinned:     t.Pinned,
		PinReasons: append([]string(nil), t.PinReasons...),
		Sampled:    t.Sampled,
		ServedFrom: t.ServedFrom,
		Path:       TracePath(t.ID),
	}
}

// List returns up to n trace summaries, newest first (n <= 0 = all).
func (r *Ring) List(n int) []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.order) {
		n = len(r.order)
	}
	out := make([]Summary, 0, n)
	for i := len(r.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, summarize(r.traces[r.order[i]]))
	}
	return out
}

// Slow returns up to n retained traces at or above the effective slow
// threshold, slowest first — the slow-query log. With no threshold
// signal yet it returns nothing (an empty log, not a noisy one).
func (r *Ring) Slow(n int) []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	th := r.slowThresholdLocked()
	var out []Summary
	if th > 0 {
		for _, id := range r.order {
			if t := r.traces[id]; t.DurationUs >= th {
				out = append(out, summarize(t))
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationUs > out[j].DurationUs })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// listPayload is the JSON envelope of /debug/aw/traces and
// /debug/aw/slow.
type listPayload struct {
	Total           int       `json:"total"`
	SlowThresholdUs int64     `json:"slow_threshold_us,omitempty"`
	Traces          []Summary `json:"traces"`
}

// WriteListJSON writes the newest n trace summaries as indented JSON.
func (r *Ring) WriteListJSON(w io.Writer, n int) error {
	p := listPayload{Total: r.Len(), SlowThresholdUs: r.SlowThresholdUs(), Traces: r.List(n)}
	if p.Traces == nil {
		p.Traces = []Summary{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteSlowJSON writes the slow-query log as indented JSON.
func (r *Ring) WriteSlowJSON(w io.Writer, n int) error {
	p := listPayload{Total: r.Len(), SlowThresholdUs: r.SlowThresholdUs(), Traces: r.Slow(n)}
	if p.Traces == nil {
		p.Traces = []Summary{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteTraceJSON writes one full trace (span tree included) as
// indented JSON; found=false means the ID is not retained.
func (r *Ring) WriteTraceJSON(w io.Writer, id string) (bool, error) {
	t, ok := r.Get(id)
	if !ok {
		return false, nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return true, enc.Encode(t)
}
