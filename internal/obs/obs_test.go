package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndAttrs(t *testing.T) {
	r := New()
	q := r.Start(SpanQuery)
	q.SetAttr("engine", "sortscan")
	sub := r.At(q)
	s := sub.Start(SpanSort)
	s.SetAttr("runs", "3")
	s.SetAttr("runs", "4") // last write wins
	s.End()
	sc := sub.Start(SpanScan)
	sc.End()
	q.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	root := snap.Spans[0]
	if root.Name != SpanQuery {
		t.Fatalf("root span = %q, want %q", root.Name, SpanQuery)
	}
	if root.Attrs["engine"] != "sortscan" {
		t.Fatalf("root attrs = %v", root.Attrs)
	}
	if len(root.Children) != 2 {
		t.Fatalf("want 2 children under query, got %d", len(root.Children))
	}
	if root.Children[0].Name != SpanSort || root.Children[1].Name != SpanScan {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	if root.Children[0].Attrs["runs"] != "4" {
		t.Fatalf("attr overwrite failed: %v", root.Children[0].Attrs)
	}
}

func TestSpanDurations(t *testing.T) {
	r := New()
	s := r.Start("work")
	time.Sleep(2 * time.Millisecond)
	s.End()
	d := s.Duration()
	if d < time.Millisecond {
		t.Fatalf("span duration %v implausibly short", d)
	}
	s.End() // idempotent
	if got := s.Duration(); got != d {
		t.Fatalf("second End changed duration: %v != %v", got, d)
	}
	// A live (un-ended) span reports running time.
	live := r.Start("live")
	time.Sleep(time.Millisecond)
	if live.Duration() <= 0 {
		t.Fatal("live span should report positive elapsed time")
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Add(3)
	c.Add(0) // no-op by contract
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	g := r.Gauge("y")
	g.Set(10)
	g.SetMax(5) // lower: ignored
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.SetMax(20)
	if got := g.Value(); got != 20 {
		t.Fatalf("gauge = %d, want 20", got)
	}
	// Same name returns the same instrument.
	if r.Counter("x") != c {
		t.Fatal("Counter lookup not stable")
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("hwm")
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.SetMax(int64(w*perWorker + i))
			}
			s := r.Start("worker")
			s.SetAttr("w", "x")
			s.End()
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("hwm").Value(); got != workers*perWorker-1 {
		t.Fatalf("hwm = %d, want %d", got, workers*perWorker-1)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	s := r.Start("anything") // nil span
	s.SetAttr("k", "v")
	s.End()
	if s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span should be inert")
	}
	r.Counter("c").Add(5)
	r.Gauge("g").SetMax(5)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 {
		t.Fatal("nil instruments should read zero")
	}
	if r.At(s) != nil {
		t.Fatal("nil.At should stay nil")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if r.FormatTree() != "" {
		t.Fatal("nil FormatTree should be empty")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WritePrometheus wrote %q (err %v)", sb.String(), err)
	}
	r.Publish("nil-recorder") // must not panic
}

func TestAtSharesRegistry(t *testing.T) {
	r := New()
	q := r.Start(SpanQuery)
	view := r.At(q)
	view.Counter("shared").Add(2)
	r.Counter("shared").Add(3)
	if got := r.Counter("shared").Value(); got != 5 {
		t.Fatalf("shared counter = %d, want 5", got)
	}
	// Spans started on the view nest under q.
	view.Start("child").End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("span nesting through At broken: %+v", snap.Spans)
	}
	// At on a view still resolves the owning recorder.
	deeper := view.At(view.Start("grand"))
	deeper.Counter("shared").Add(1)
	if got := r.Counter("shared").Value(); got != 6 {
		t.Fatalf("nested view counter = %d, want 6", got)
	}
}

func TestSnapshotJSONAndPrometheus(t *testing.T) {
	r := New()
	r.Counter(MRecordsScanned).Add(10)
	r.Gauge(GLiveCellsHWM).SetMax(4)
	r.Start(SpanScan).End()

	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal([]byte(b.String()), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters[MRecordsScanned] != 10 || round.Gauges[GLiveCellsHWM] != 4 {
		t.Fatalf("round-tripped snapshot = %+v", round)
	}
	if len(round.Spans) != 1 || round.Spans[0].Name != SpanScan {
		t.Fatalf("round-tripped spans = %+v", round.Spans)
	}

	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE awra_records_scanned counter",
		"awra_records_scanned 10",
		"# TYPE awra_live_cells_hwm gauge",
		"awra_live_cells_hwm 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTree(t *testing.T) {
	r := New()
	q := r.Start(SpanQuery)
	r.At(q).Start(SpanSort).End()
	q.End()
	tree := r.FormatTree()
	if !strings.Contains(tree, SpanQuery) || !strings.Contains(tree, SpanSort) {
		t.Fatalf("tree missing spans:\n%s", tree)
	}
	if !strings.Contains(tree, "%") {
		t.Fatalf("tree missing parent percentage:\n%s", tree)
	}
	qLine := strings.Index(tree, SpanQuery)
	sLine := strings.Index(tree, SpanSort)
	if qLine > sLine {
		t.Fatalf("child printed before parent:\n%s", tree)
	}
}

func TestExpvarPublish(t *testing.T) {
	r := New()
	r.Counter("published").Add(1)
	r.Publish("awra-test")
	v := expvar.Get("awra-test")
	if v == nil {
		t.Fatal("expvar name not registered")
	}
	if !strings.Contains(v.String(), `"published":1`) {
		t.Fatalf("expvar view = %s", v.String())
	}
	// Re-publishing a new recorder must replace, not panic.
	r2 := New()
	r2.Counter("published").Add(7)
	r2.Publish("awra-test")
	if !strings.Contains(expvar.Get("awra-test").String(), `"published":7`) {
		t.Fatalf("republish did not replace view: %s", expvar.Get("awra-test").String())
	}
}

// BenchmarkNilCounterAdd documents that the nil-recorder path costs a
// pointer check, keeping un-instrumented hot loops free.
func BenchmarkNilCounterAdd(b *testing.B) {
	var r *Recorder
	c := r.Counter("x")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
