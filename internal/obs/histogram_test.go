package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
		{math.MaxInt64, histMaxBucket},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		// Every value must satisfy v <= upper(bucket(v)).
		if c.v > 0 && c.v > bucketUpper(bucketIndex(c.v)) {
			t.Errorf("value %d above its bucket upper bound %d", c.v, bucketUpper(bucketIndex(c.v)))
		}
	}
	if bucketUpper(histMaxBucket) != math.MaxInt64 {
		t.Errorf("top bucket upper = %d, want MaxInt64", bucketUpper(histMaxBucket))
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := New()
	h := r.Histogram(HQueryLatencyUs, "engine", "sortscan")
	for _, v := range []int64{1, 1, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1105 {
		t.Fatalf("sum = %d, want 1105", h.Sum())
	}
	snaps := r.HistogramSnapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != HQueryLatencyUs || s.Labels["engine"] != "sortscan" {
		t.Fatalf("unexpected identity: %+v", s)
	}
	var total int64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Errorf("snapshot contains empty bucket le=%d", b.Le)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", total, s.Count)
	}
}

func TestHistogramLabelCanonicalization(t *testing.T) {
	r := New()
	h1 := r.Histogram("h", "b", "2", "a", "1")
	h2 := r.Histogram("h", "a", "1", "b", "2")
	if h1 != h2 {
		t.Fatal("label order split the series")
	}
	if h3 := r.Histogram("h", "a", "1"); h3 == h1 {
		t.Fatal("different label sets resolved to the same series")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	// 100 observations of 100: everything in the (64,128] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	s := r.HistogramSnapshots()[0]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		if got < 64 || got > 128 {
			t.Errorf("Quantile(%g) = %g, want within (64,128]", q, got)
		}
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// Quantiles are monotone in q.
	if s.Quantile(0.1) > s.Quantile(0.9) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramPrometheusExport(t *testing.T) {
	r := New()
	h := r.Histogram(HQueryLatencyUs, "engine", "sortscan")
	h.Observe(3)  // bucket le=4
	h.Observe(4)  // bucket le=4
	h.Observe(50) // bucket le=64
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE awra_query_latency_us histogram",
		`awra_query_latency_us_bucket{engine="sortscan",le="4"} 2`,
		`awra_query_latency_us_bucket{engine="sortscan",le="64"} 3`, // cumulative
		`awra_query_latency_us_bucket{engine="sortscan",le="+Inf"} 3`,
		`awra_query_latency_us_sum{engine="sortscan"} 57`,
		`awra_query_latency_us_count{engine="sortscan"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE awra_query_latency_us histogram"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestHistogramPrometheusNoLabels(t *testing.T) {
	r := New()
	r.Histogram("plain").Observe(10)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`awra_plain_bucket{le="16"} 1`,
		`awra_plain_bucket{le="+Inf"} 1`,
		"awra_plain_sum 10",
		"awra_plain_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var r *Recorder
	h := r.Histogram("x", "k", "v")
	if h != nil {
		t.Fatal("nil recorder should return nil histogram")
	}
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read zero")
	}
	if r.HistogramSnapshots() != nil {
		t.Fatal("nil recorder snapshots should be nil")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("conc")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Observe(seed + i)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestSpanSubtreeSnapshot(t *testing.T) {
	r := New()
	q := r.Start(SpanQuery)
	q.SetAttr("engine", "sortscan")
	s := q.Start(SpanSort)
	s.End()
	q.Start(SpanScan).End()
	q.End()
	other := r.Start(SpanQuery) // sibling query must not appear
	other.End()

	snap := q.Snapshot()
	if snap == nil || snap.Name != SpanQuery {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Attrs["engine"] != "sortscan" {
		t.Fatalf("attrs = %v", snap.Attrs)
	}
	if len(snap.Children) != 2 || snap.Children[0].Name != SpanSort || snap.Children[1].Name != SpanScan {
		t.Fatalf("children = %+v", snap.Children)
	}
	var nilSpan *Span
	if nilSpan.Snapshot() != nil {
		t.Fatal("nil span snapshot should be nil")
	}
}
