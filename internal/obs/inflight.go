package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Inflight is a registry of currently running queries. A process
// typically uses the package-global DefaultInflight; the aw layer
// registers every query there so operators can list live work via
// aw.InflightQueries() or the /debug/aw/queries endpoint.
//
// All methods are nil-safe, and Begin/Finish are query-boundary
// events — the registry is never touched per record. Progress flows
// through span Total/Done fields, which scan loops update atomically
// at their existing guard strides.
type Inflight struct {
	mu      sync.Mutex
	nextID  int64
	queries map[int64]*InflightQuery
}

// DefaultInflight is the process-global registry.
var DefaultInflight = &Inflight{}

// InflightQuery is one registered running query. Create with Begin;
// call Finish when the query ends (success or failure). Nil-safe.
type InflightQuery struct {
	reg   *Inflight
	id    int64
	label string
	start time.Time
	rec   *Recorder

	mu      sync.Mutex
	span    *Span
	engine  string
	traceID string
	// maxProgress (float64 bits) smooths the reported fraction into a
	// monotonic non-decreasing series even when new work spans appear
	// and grow the denominator (e.g. a second multipass pass).
	maxProgress atomic.Uint64
}

// QuerySnapshot is one in-flight query as reported by Snapshot.
type QuerySnapshot struct {
	ID    int64  `json:"id"`
	Label string `json:"label,omitempty"`
	// TraceID is the query's flight-recorder trace ID, and TracePath the
	// link-ready debug endpoint where its full trace lands on completion
	// (/debug/aw/traces/<id>) — inflight → flight-recorder continuity.
	TraceID   string `json:"trace_id,omitempty"`
	TracePath string `json:"trace_path,omitempty"`
	Engine    string `json:"engine,omitempty"`
	Phase     string `json:"phase,omitempty"`
	ElapsedUs int64  `json:"elapsed_us"`
	// Done/Total sum record progress over every work span that has
	// declared a total; fixed-width rows make totals exact.
	Done  int64 `json:"records_done"`
	Total int64 `json:"records_total"`
	// Progress is the fraction of declared work completed, in [0, 1],
	// monotonically non-decreasing over a query's lifetime.
	Progress float64          `json:"progress"`
	Workers  []WorkerProgress `json:"workers,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	Nodes    []NodeStats      `json:"nodes,omitempty"`
}

// WorkerProgress is the progress of one work span (a shard, partition,
// pass, or serial scan) inside an in-flight query.
type WorkerProgress struct {
	Name  string `json:"name"`
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
}

// Begin registers a running query. The span (usually the query-root
// span) scopes phase detection and progress aggregation; rec supplies
// live metric snapshots. Either may be nil. Nil-safe on the registry.
func (f *Inflight) Begin(label string, rec *Recorder, span *Span) *InflightQuery {
	if f == nil {
		return nil
	}
	q := &InflightQuery{reg: f, label: label, start: time.Now(), rec: rec, span: span}
	f.mu.Lock()
	f.nextID++
	q.id = f.nextID
	if f.queries == nil {
		f.queries = make(map[int64]*InflightQuery)
	}
	f.queries[q.id] = q
	f.mu.Unlock()
	return q
}

// Finish deregisters the query. Idempotent, nil-safe.
func (q *InflightQuery) Finish() {
	if q == nil {
		return
	}
	q.reg.mu.Lock()
	delete(q.reg.queries, q.id)
	q.reg.mu.Unlock()
}

// ID returns the query's registry ID. Nil-safe (returns 0).
func (q *InflightQuery) ID() int64 {
	if q == nil {
		return 0
	}
	return q.id
}

// SetEngine records the engine the query resolved to. Nil-safe.
func (q *InflightQuery) SetEngine(name string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.engine = name
	q.mu.Unlock()
}

// SetTraceID records the query's flight-recorder trace ID so live
// snapshots link to where the completed trace will be retrievable.
// Nil-safe.
func (q *InflightQuery) SetTraceID(id string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.traceID = id
	q.mu.Unlock()
}

// SetSpan attaches the query-root span that scopes phase detection and
// progress aggregation. Callers that must register the query before the
// span exists (to obtain the ID for pprof labels) pass nil to Begin and
// attach the span here. Nil-safe.
func (q *InflightQuery) SetSpan(span *Span) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.span = span
	q.mu.Unlock()
}

// Snapshot lists every in-flight query, sorted by ID. Nil-safe.
func (f *Inflight) Snapshot() []QuerySnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	qs := make([]*InflightQuery, 0, len(f.queries))
	for _, q := range f.queries {
		qs = append(qs, q)
	}
	f.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]QuerySnapshot, 0, len(qs))
	for _, q := range qs {
		out = append(out, q.snapshot())
	}
	return out
}

// WriteJSON writes {"queries": [...]} as indented JSON — the payload
// of the /debug/aw/queries endpoint.
func (f *Inflight) WriteJSON(w io.Writer) error {
	snap := f.Snapshot()
	if snap == nil {
		snap = []QuerySnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Queries []QuerySnapshot `json:"queries"`
	}{snap})
}

func (q *InflightQuery) snapshot() QuerySnapshot {
	q.mu.Lock()
	engine, span, traceID := q.engine, q.span, q.traceID
	q.mu.Unlock()
	s := QuerySnapshot{
		ID:        q.id,
		Label:     q.label,
		TraceID:   traceID,
		Engine:    engine,
		ElapsedUs: time.Since(q.start).Microseconds(),
	}
	if traceID != "" {
		// Mirrors flight.TracePath (obs cannot import flight — the flight
		// recorder is built on obs).
		s.TracePath = "/debug/aw/traces/" + traceID
	}
	if q.rec != nil {
		snap := q.rec.Snapshot()
		s.Counters, s.Gauges, s.Nodes = snap.Counters, snap.Gauges, snap.Nodes
	}
	s.Phase, s.Done, s.Total, s.Workers = workProgress(span)
	raw := 0.0
	if s.Total > 0 {
		raw = float64(s.Done) / float64(s.Total)
		if raw > 1 {
			raw = 1
		}
	}
	// Monotonic smoothing: never report less than a previous snapshot.
	for {
		prev := q.maxProgress.Load()
		if raw <= math.Float64frombits(prev) {
			raw = math.Float64frombits(prev)
			break
		}
		if q.maxProgress.CompareAndSwap(prev, math.Float64bits(raw)) {
			break
		}
	}
	s.Progress = raw
	return s
}

// workProgress walks the query's span subtree collecting the current
// phase (the deepest still-running span) and record progress from
// every span that declared a total.
func workProgress(span *Span) (phase string, done, total int64, workers []WorkerProgress) {
	if span == nil || span.rec == nil {
		return "", 0, 0, nil
	}
	o := span.rec.owner()
	if o == nil {
		return "", 0, 0, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	phase = deepestRunningLocked(span)
	var walk func(s *Span, worker string)
	walk = func(s *Span, worker string) {
		switch s.name {
		case SpanShard, SpanPartition, SpanPass, SpanMeasure:
			worker = workerName(s)
		}
		if t := s.total.Load(); t > 0 {
			d := s.done.Load()
			if d > t {
				d = t
			}
			done += d
			total += t
			name := worker
			if name == "" {
				name = s.name
			}
			workers = append(workers, WorkerProgress{Name: name, Done: d, Total: t})
		}
		for _, c := range s.children {
			walk(c, worker)
		}
	}
	walk(span, "")
	return phase, done, total, workers
}

// deepestRunningLocked returns the name of the most recently started
// still-running descendant (the query's current phase), or "" if the
// whole subtree has ended. Caller holds the owning recorder's mutex.
func deepestRunningLocked(s *Span) string {
	if s.ended {
		return ""
	}
	for i := len(s.children) - 1; i >= 0; i-- {
		if name := deepestRunningLocked(s.children[i]); name != "" {
			return name
		}
	}
	return s.name
}

// workerName labels a worker-scope span with its identifying attr
// ("shard:3", "pass:2", "measure:cnt").
func workerName(s *Span) string {
	for _, a := range s.attrs {
		switch a.Key {
		case "shard", "partition", "pass", "measure", "part":
			return s.name + ":" + a.Value
		}
	}
	return s.name
}
