package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Snapshot is a point-in-time, JSON-serializable view of a recorder:
// every counter and gauge plus the span tree. Benchmark figures embed
// snapshots so the performance trajectory is machine-diffable across
// PRs.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Nodes      []NodeStats         `json:"nodes,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []*SpanSnapshot     `json:"spans,omitempty"`
}

// SpanSnapshot is one span in a Snapshot. Still-running spans carry
// their live elapsed time and Running=true, so snapshots of in-flight
// queries render meaningfully.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	DurationUs int64             `json:"duration_us"`
	Running    bool              `json:"running,omitempty"`
	Done       int64             `json:"done,omitempty"`
	Total      int64             `json:"total,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanSnapshot   `json:"children,omitempty"`
}

// Snapshot captures the recorder's current state. Nil-safe (returns an
// empty snapshot).
func (r *Recorder) Snapshot() Snapshot {
	o := r.owner()
	if o == nil {
		return Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	}
	snap := Snapshot{Counters: o.counterValues(), Gauges: o.gaugeValues(), Nodes: o.NodeStats(), Histograms: o.HistogramSnapshots()}
	o.mu.Lock()
	for _, c := range o.root.children {
		snap.Spans = append(snap.Spans, snapshotSpanLocked(c))
	}
	o.mu.Unlock()
	return snap
}

func snapshotSpanLocked(s *Span) *SpanSnapshot {
	d := s.duration
	if !s.ended {
		d = time.Since(s.start)
	}
	out := &SpanSnapshot{Name: s.name, DurationUs: d.Microseconds(), Running: !s.ended}
	out.Done, out.Total = s.done.Load(), s.total.Load()
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, snapshotSpanLocked(c))
	}
	return out
}

// Snapshot captures this span and its subtree as a SpanSnapshot.
// Callers holding a span handle (e.g. the query span) use it to
// extract that query's phase durations without walking the whole
// recorder. Nil-safe (returns nil).
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	return snapshotSpanLocked(s)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes every counter and gauge in the Prometheus
// text exposition format, prefixed "awra_", followed by the per-node
// labeled families (one # HELP/# TYPE header per family, label values
// escaped per the exposition spec). Nil-safe (writes nothing).
func (r *Recorder) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, name := range sortedNames(snap.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE awra_%s counter\nawra_%s %d\n", name, name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(snap.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE awra_%s gauge\nawra_%s %d\n", name, name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	if err := writeHistogramFamilies(w, snap.Histograms); err != nil {
		return err
	}
	return writeNodeFamilies(w, snap.Nodes)
}

// histogramHelp documents the standard histogram families in exports.
var histogramHelp = map[string]string{
	HQueryLatencyUs: "End-to-end query latency in microseconds.",
	HPhaseLatencyUs: "Per-phase query latency in microseconds.",
	HRowsPerSec:     "Query scan throughput in fact records per second.",
}

// writeHistogramFamilies renders histograms in the Prometheus text
// exposition format: cumulative _bucket series ending at le="+Inf",
// plus _sum and _count, with one HELP/TYPE header per family. Only
// non-empty buckets are written — cumulative counts stay spec-valid
// under any bucket subset as long as +Inf is present.
func writeHistogramFamilies(w io.Writer, hists []HistogramSnapshot) error {
	lastName := ""
	for _, h := range hists {
		if h.Name != lastName {
			help := histogramHelp[h.Name]
			if help == "" {
				help = "Log-scale distribution."
			}
			if _, err := fmt.Fprintf(w, "# HELP awra_%s %s\n# TYPE awra_%s histogram\n", h.Name, help, h.Name); err != nil {
				return err
			}
			lastName = h.Name
		}
		labels := formatLabels(h.Labels)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "awra_%s_bucket{%sle=\"%d\"} %d\n", h.Name, labels, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "awra_%s_bucket{%sle=\"+Inf\"} %d\n", h.Name, labels, h.Count); err != nil {
			return err
		}
		suffix := strings.TrimSuffix(labels, ",")
		if suffix != "" {
			suffix = "{" + suffix + "}"
		}
		if _, err := fmt.Fprintf(w, "awra_%s_sum%s %d\nawra_%s_count%s %d\n", h.Name, suffix, h.Sum, h.Name, suffix, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatLabels renders a label map as `k="v",` pairs (trailing comma)
// in sorted key order, ready to precede the le label.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, escapeLabel(labels[k]))
	}
	return b.String()
}

// nodeFamilies defines the per-node labeled metric families in export
// order. Each selects one NodeStats field; families whose values are
// all zero are omitted entirely (so the header appears only with data).
var nodeFamilies = []struct {
	name, typ, help string
	value           func(NodeStats) float64
}{
	{"node_records_in", "counter", "Records or input cells consumed by a measure node.", func(n NodeStats) float64 { return float64(n.RecordsIn) }},
	{"node_records_out", "counter", "Result rows emitted by a measure node.", func(n NodeStats) float64 { return float64(n.RecordsOut) }},
	{"node_cells_created", "counter", "Live cells created by a measure node.", func(n NodeStats) float64 { return float64(n.CellsCreated) }},
	{"node_cells_finalized", "counter", "Cells flushed to output by a measure node.", func(n NodeStats) float64 { return float64(n.CellsFinalized) }},
	{"node_flush_batches", "counter", "Watermark-triggered flush batches per measure node.", func(n NodeStats) float64 { return float64(n.FlushBatches) }},
	{"node_live_cells_hwm", "gauge", "Peak simultaneous live cells per measure node.", func(n NodeStats) float64 { return float64(n.LiveCellsHWM) }},
	{"node_est_cells", "gauge", "Optimizer-estimated cell count per measure node.", func(n NodeStats) float64 { return n.EstCells }},
}

func writeNodeFamilies(w io.Writer, nodes []NodeStats) error {
	for _, fam := range nodeFamilies {
		headed := false
		for _, n := range nodes {
			v := fam.value(n)
			if v == 0 {
				continue
			}
			if !headed {
				if _, err := fmt.Fprintf(w, "# HELP awra_%s %s\n# TYPE awra_%s %s\n", fam.name, fam.help, fam.name, fam.typ); err != nil {
					return err
				}
				headed = true
			}
			if _, err := fmt.Fprintf(w, "awra_%s{node=\"%s\"} %s\n", fam.name, escapeLabel(n.Node), fmtPromValue(v)); err != nil {
				return err
			}
		}
	}
	// Arc family: two series per arc, labeled {node, arc}.
	for _, fam := range []struct {
		name, help string
		value      func(ArcStats) int64
	}{
		{"node_arc_advances", "Coarse watermark advances per incoming arc of a measure node.", func(a ArcStats) int64 { return a.Advances }},
		{"node_arc_held_back", "Finalizations deferred by a lagging arc watermark.", func(a ArcStats) int64 { return a.HeldBack }},
	} {
		headed := false
		for _, n := range nodes {
			for _, a := range n.Arcs {
				v := fam.value(a)
				if v == 0 {
					continue
				}
				if !headed {
					if _, err := fmt.Fprintf(w, "# HELP awra_%s %s\n# TYPE awra_%s counter\n", fam.name, fam.help, fam.name); err != nil {
						return err
					}
					headed = true
				}
				if _, err := fmt.Fprintf(w, "awra_%s{node=\"%s\",arc=\"%s\"} %d\n", fam.name, escapeLabel(n.Node), escapeLabel(a.Label), v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// escapeLabel escapes a Prometheus label value per the text exposition
// spec: backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// fmtPromValue renders integers without an exponent and floats
// compactly.
func fmtPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// expvarView adapts a Recorder to the expvar.Var interface: String
// returns the JSON snapshot, so `expvar.Publish("awra", rec.Expvar())`
// exposes the live registry at /debug/vars.
type expvarView struct {
	r *Recorder
}

func (v expvarView) String() string {
	b, err := json.Marshal(v.r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Expvar returns an expvar-compatible live view of the recorder.
func (r *Recorder) Expvar() expvar.Var { return expvarView{r: r} }

var publishMu sync.Mutex

// Publish registers the recorder's live view under the given expvar
// name. Unlike expvar.Publish it tolerates re-publishing the same
// name (the view is replaced). Nil-safe.
func (r *Recorder) Publish(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if holder, ok := v.(*replaceableVar); ok {
			holder.mu.Lock()
			holder.v = r.Expvar()
			holder.mu.Unlock()
			return
		}
		return // name taken by someone else; leave it
	}
	expvar.Publish(name, &replaceableVar{v: r.Expvar()})
}

type replaceableVar struct {
	mu sync.Mutex
	v  expvar.Var
}

func (rv *replaceableVar) String() string {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return rv.v.String()
}

// FormatTree renders the span tree with durations and per-phase
// percentages of the parent span, one span per line:
//
//	query                      41.2ms
//	  optimize                  1.1ms   2.7%
//	  sort                     12.9ms  31.3%
//	    runs                    9.0ms  69.8%
//	    merge                   3.6ms  27.9%
//	  scan                     26.8ms  65.0%
//
// Nil-safe (returns "").
func (r *Recorder) FormatTree() string {
	o := r.owner()
	if o == nil {
		return ""
	}
	var b strings.Builder
	o.mu.Lock()
	for _, c := range o.root.children {
		formatSpanLocked(&b, c, 0, 0)
	}
	o.mu.Unlock()
	return b.String()
}

func formatSpanLocked(b *strings.Builder, s *Span, depth int, parent time.Duration) {
	d := s.duration
	if !s.ended {
		d = time.Since(s.start)
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%-*s %9s", 28, indent+s.name, fmtDuration(d))
	if parent > 0 {
		fmt.Fprintf(b, " %5.1f%%", 100*float64(d)/float64(parent))
	}
	if !s.ended {
		b.WriteString(" (running)")
		if done, total := s.done.Load(), s.total.Load(); total > 0 {
			fmt.Fprintf(b, " %d/%d", done, total)
		}
	}
	for _, a := range s.attrs {
		fmt.Fprintf(b, "  %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		formatSpanLocked(b, c, depth+1, d)
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
