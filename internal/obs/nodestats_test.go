package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestMergeNodeStats(t *testing.T) {
	r := New()
	r.MergeNodeStats(NodeStats{
		Node: "cnt", RecordsIn: 100, RecordsOut: 10,
		CellsCreated: 12, CellsFinalized: 12, FlushBatches: 3, LiveCellsHWM: 5,
		Arcs: []ArcStats{{Label: "fact", Advances: 10, HeldBack: 2}},
	})
	// A second publish (another shard / pass) adds counters, maxes HWM,
	// and merges arcs by label.
	r.MergeNodeStats(NodeStats{
		Node: "cnt", RecordsIn: 50, CellsCreated: 6, LiveCellsHWM: 9, EstCells: 42,
		Arcs: []ArcStats{{Label: "fact", Advances: 5}, {Label: "base", HeldBack: 1}},
	})
	r.MergeNodeStats(NodeStats{Node: "roll", RecordsIn: 7})

	ns := r.NodeStats()
	if len(ns) != 2 {
		t.Fatalf("want 2 nodes, got %d", len(ns))
	}
	// Sorted by node name.
	if ns[0].Node != "cnt" || ns[1].Node != "roll" {
		t.Fatalf("unexpected order: %q, %q", ns[0].Node, ns[1].Node)
	}
	c := ns[0]
	if c.RecordsIn != 150 || c.CellsCreated != 18 || c.LiveCellsHWM != 9 {
		t.Errorf("counters add / HWM maxes: got in=%d created=%d hwm=%d", c.RecordsIn, c.CellsCreated, c.LiveCellsHWM)
	}
	if c.EstCells != 42 {
		t.Errorf("EstCells: got %v", c.EstCells)
	}
	if len(c.Arcs) != 2 || c.Arcs[0].Label != "fact" || c.Arcs[0].Advances != 15 || c.Arcs[0].HeldBack != 2 {
		t.Errorf("arc merge: %+v", c.Arcs)
	}
}

func TestNodeStatsNilAndIsolation(t *testing.T) {
	var r *Recorder
	r.MergeNodeStats(NodeStats{Node: "x", RecordsIn: 1}) // must not panic
	r.SetNodeEstimate("x", 5)
	if got := r.NodeStats(); got != nil {
		t.Fatalf("nil recorder NodeStats: got %v", got)
	}

	// The returned slice is a deep copy: mutating it must not corrupt
	// the registry.
	r2 := New()
	r2.MergeNodeStats(NodeStats{Node: "a", Arcs: []ArcStats{{Label: "l", Advances: 1}}})
	snap := r2.NodeStats()
	snap[0].Arcs[0].Advances = 999
	if r2.NodeStats()[0].Arcs[0].Advances != 1 {
		t.Fatal("NodeStats must deep-copy arcs")
	}
}

func TestSetNodeEstimate(t *testing.T) {
	r := New()
	r.SetNodeEstimate("cnt", 100)
	r.MergeNodeStats(NodeStats{Node: "cnt", RecordsIn: 5})
	ns := r.NodeStats()
	if len(ns) != 1 || ns[0].EstCells != 100 || ns[0].RecordsIn != 5 {
		t.Fatalf("estimate + actuals on one node: %+v", ns)
	}
}

func TestPrometheusNodeFamilies(t *testing.T) {
	r := New()
	r.MergeNodeStats(NodeStats{
		Node: "cnt", RecordsIn: 100, RecordsOut: 10, CellsCreated: 12,
		CellsFinalized: 12, FlushBatches: 3, LiveCellsHWM: 5,
		Arcs: []ArcStats{{Label: `fa"ct\n`, Advances: 10, HeldBack: 2}},
	})
	r.MergeNodeStats(NodeStats{Node: "roll", RecordsIn: 10, CellsFinalized: 2})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Golden lines of the labeled family, spec-compliant: HELP and TYPE
	// once per family, label values escaped.
	for _, want := range []string{
		"# HELP awra_node_records_in ",
		"# TYPE awra_node_records_in counter",
		`awra_node_records_in{node="cnt"} 100`,
		`awra_node_records_in{node="roll"} 10`,
		"# TYPE awra_node_live_cells_hwm gauge",
		`awra_node_live_cells_hwm{node="cnt"} 5`,
		"# TYPE awra_node_arc_advances counter",
		`awra_node_arc_advances{node="cnt",arc="fa\"ct\\n"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE awra_node_records_in counter"); n != 1 {
		t.Errorf("TYPE header must appear once per family, got %d", n)
	}
	// A family with no nonzero series stays silent.
	if strings.Contains(out, "node_est_cells") {
		t.Errorf("empty family must not emit headers:\n%s", out)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escapeLabel: %q", got)
	}
}

// TestConcurrentNodeStatsPublish stresses many shard goroutines
// publishing node stats through At() views into one shared registry
// while another goroutine snapshots — run with -race.
func TestConcurrentNodeStatsPublish(t *testing.T) {
	r := New()
	root := r.Start(SpanQuery)
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := r.At(root)
			for i := 0; i < rounds; i++ {
				sub.MergeNodeStats(NodeStats{
					Node: "cnt", RecordsIn: 1, CellsCreated: 1, LiveCellsHWM: int64(w + 1),
					Arcs: []ArcStats{{Label: "fact", Advances: 1}},
				})
				sub.SetNodeEstimate("cnt", float64(w))
			}
		}(w)
	}
	// Snapshot-while-publishing.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.NodeStats()
			_ = r.Snapshot()
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	root.End()
	ns := r.NodeStats()
	if len(ns) != 1 || ns[0].RecordsIn != workers*rounds {
		t.Fatalf("lost updates: %+v", ns)
	}
	if ns[0].Arcs[0].Advances != workers*rounds {
		t.Fatalf("lost arc updates: %+v", ns[0].Arcs)
	}
	if ns[0].LiveCellsHWM != workers {
		t.Fatalf("HWM should be max across workers: %d", ns[0].LiveCellsHWM)
	}
}
