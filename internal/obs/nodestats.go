package obs

import "sort"

// NodeStats attributes one engine run's costs to a single measure node
// of the workflow DAG — the per-operator "actual rows / actual time"
// view that Tables 7-8 of the paper reason about. Engines accumulate
// these in plain local fields during the scan (never touching the
// recorder per record) and publish one NodeStats per node at phase
// boundaries via MergeNodeStats.
//
// Counter-like fields (records, cells, batches, arc advances) add
// across publishes, so sharded and multi-pass engines publishing the
// same node from several goroutines produce correct totals.
// LiveCellsHWM takes the maximum, and EstCells (the optimizer's
// pre-execution estimate, in cells) keeps the largest published value.
type NodeStats struct {
	// Node is the measure's workflow name (label value in exports).
	Node string `json:"node"`
	// RecordsIn counts records or input cells consumed by the node
	// (base records for basics, child cells for rollups/composites).
	RecordsIn int64 `json:"records_in,omitempty"`
	// RecordsOut counts result rows the node emitted.
	RecordsOut int64 `json:"records_out,omitempty"`
	// CellsCreated counts hash entries (live cells) this node created.
	CellsCreated int64 `json:"cells_created,omitempty"`
	// CellsFinalized counts cells the node flushed to its output table.
	CellsFinalized int64 `json:"cells_finalized,omitempty"`
	// FlushBatches counts watermark-triggered early-flush batches.
	FlushBatches int64 `json:"flush_batches,omitempty"`
	// LiveCellsHWM is the node's peak simultaneous live-cell count.
	LiveCellsHWM int64 `json:"live_cells_hwm,omitempty"`
	// EstCells is the optimizer's estimated cell count for the node
	// (plan.Node.EstCells), if a planning pass ran. Zero otherwise.
	EstCells float64 `json:"est_cells,omitempty"`
	// Arcs reports per-dependency watermark behavior (§5 arcs).
	Arcs []ArcStats `json:"arcs,omitempty"`
}

// ArcStats is the watermark behavior of one incoming arc of a node.
type ArcStats struct {
	// Label identifies the arc, "src->dst".
	Label string `json:"label"`
	// Advances counts coarse watermark advances observed on this arc.
	Advances int64 `json:"advances,omitempty"`
	// HeldBack counts finalization attempts deferred because this
	// arc's watermark lagged — the per-arc watermark lag.
	HeldBack int64 `json:"held_back,omitempty"`
}

// add folds src into dst with the family's merge semantics.
func (dst *NodeStats) add(src NodeStats) {
	dst.RecordsIn += src.RecordsIn
	dst.RecordsOut += src.RecordsOut
	dst.CellsCreated += src.CellsCreated
	dst.CellsFinalized += src.CellsFinalized
	dst.FlushBatches += src.FlushBatches
	if src.LiveCellsHWM > dst.LiveCellsHWM {
		dst.LiveCellsHWM = src.LiveCellsHWM
	}
	if src.EstCells > dst.EstCells {
		dst.EstCells = src.EstCells
	}
	for _, a := range src.Arcs {
		found := false
		for i := range dst.Arcs {
			if dst.Arcs[i].Label == a.Label {
				dst.Arcs[i].Advances += a.Advances
				dst.Arcs[i].HeldBack += a.HeldBack
				found = true
				break
			}
		}
		if !found {
			dst.Arcs = append(dst.Arcs, a)
		}
	}
}

// MergeNodeStats publishes one node's stats into the recorder's
// labeled node family, folding into any stats already published for
// the same node (see NodeStats for the merge semantics). Nil-safe.
// A phase-boundary operation: guarded by the registry mutex, never
// called per record.
func (r *Recorder) MergeNodeStats(ns NodeStats) {
	o := r.owner()
	if o == nil || ns.Node == "" {
		return
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	if o.reg.nodes == nil {
		o.reg.nodes = make(map[string]*NodeStats)
	}
	cur, ok := o.reg.nodes[ns.Node]
	if !ok {
		cur = &NodeStats{Node: ns.Node}
		o.reg.nodes[ns.Node] = cur
	}
	cur.add(ns)
}

// SetNodeEstimate records the optimizer's estimated cell count for a
// node without touching its actuals. Planners call this before
// execution so EXPLAIN ANALYZE can show estimate-vs-actual columns.
// Nil-safe.
func (r *Recorder) SetNodeEstimate(node string, estCells float64) {
	r.MergeNodeStats(NodeStats{Node: node, EstCells: estCells})
}

// NodeStats returns a copy of every published node's stats, sorted by
// node name. Nil-safe (returns nil).
func (r *Recorder) NodeStats() []NodeStats {
	o := r.owner()
	if o == nil {
		return nil
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	if len(o.reg.nodes) == 0 {
		return nil
	}
	out := make([]NodeStats, 0, len(o.reg.nodes))
	for _, ns := range o.reg.nodes {
		cp := *ns
		cp.Arcs = append([]ArcStats(nil), ns.Arcs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
