package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// registry holds named counters and gauges. Lookup is mutex-guarded
// (engines resolve instruments once per run, at phase boundaries);
// updates are atomic, so a resolved *Counter or *Gauge is safe to
// update from many goroutines.
type registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	// nodes is the labeled per-measure-node family (see nodestats.go),
	// keyed by node name. Created lazily on first publish.
	nodes map[string]*NodeStats
	// histograms holds the labeled log-scale distributions (see
	// histogram.go), keyed by name plus canonical label pairs. Created
	// lazily on first resolution.
	histograms map[string]*Histogram
}

func (g *registry) init() {
	g.counters = make(map[string]*Counter)
	g.gauges = make(map[string]*Gauge)
}

// Counter is a monotonically increasing metric. A nil Counter is a
// valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil-safe (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time metric. A nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value (a
// high-water mark). Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the gauge's value. Nil-safe (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter returns (creating if needed) the named counter. Calling it
// registers the name, so a metric shows up in snapshots even while
// still zero — engines resolve their full vocabulary up front so every
// evaluator exports the same names. Nil recorders return nil counters.
func (r *Recorder) Counter(name string) *Counter {
	o := r.owner()
	if o == nil {
		return nil
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	c, ok := o.reg.counters[name]
	if !ok {
		c = &Counter{}
		o.reg.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil recorders
// return nil gauges.
func (r *Recorder) Gauge(name string) *Gauge {
	o := r.owner()
	if o == nil {
		return nil
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	g, ok := o.reg.gauges[name]
	if !ok {
		g = &Gauge{}
		o.reg.gauges[name] = g
	}
	return g
}

// counterValues returns a sorted copy of the counter names and values.
func (r *Recorder) counterValues() map[string]int64 {
	o := r.owner()
	if o == nil {
		return nil
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	out := make(map[string]int64, len(o.reg.counters))
	for name, c := range o.reg.counters {
		out[name] = c.Value()
	}
	return out
}

// gaugeValues returns a copy of the gauge names and values.
func (r *Recorder) gaugeValues() map[string]int64 {
	o := r.owner()
	if o == nil {
		return nil
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	out := make(map[string]int64, len(o.reg.gauges))
	for name, g := range o.reg.gauges {
		out[name] = g.Value()
	}
	return out
}

func sortedNames(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
