package gen

import (
	"path/filepath"
	"testing"

	"awra/internal/model"
	"awra/internal/storage"
)

func TestSynthDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "synth.rec")
	s, err := Synth(path, 1000, SynthConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDims() != 4 || s.NumMeasures() != 1 {
		t.Fatalf("schema shape %d/%d", s.NumDims(), s.NumMeasures())
	}
	recs, hdr, err := storage.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Count != 1000 {
		t.Fatalf("count = %d", hdr.Count)
	}
	// Base codes in [0, 1000); top concrete level has 10 values.
	seenTop := map[int64]bool{}
	for _, r := range recs {
		for d, v := range r.Dims {
			if v < 0 || v >= 1000 {
				t.Fatalf("dim %d code %d out of range", d, v)
			}
		}
		seenTop[s.Dim(0).Up(0, 2, r.Dims[0])] = true
	}
	if len(seenTop) != 10 {
		t.Errorf("top-level values = %d, want 10", len(seenTop))
	}
}

func TestSynthDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.rec")
	p2 := filepath.Join(dir, "b.rec")
	if _, err := Synth(p1, 200, SynthConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := Synth(p2, 200, SynthConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	a, _, err := storage.ReadAll(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := storage.ReadAll(p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Dims {
			if a[i].Dims[j] != b[i].Dims[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
}

func TestSynthRecords(t *testing.T) {
	s, recs, err := SynthRecords(100, SynthConfig{Dims: 2, Depth: 2, Fanout: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDims() != 2 || len(recs) != 100 {
		t.Fatalf("shape %d/%d", s.NumDims(), len(recs))
	}
	for _, r := range recs {
		if r.Dims[0] < 0 || r.Dims[0] >= 16 {
			t.Fatalf("code %d out of 4^2 range", r.Dims[0])
		}
	}
}

func TestNetLogStructure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.rec")
	cfg := NetConfig{Days: 3, Escalations: 2, Recons: 2, ReconSources: 40, Seed: 11}
	s, truth, err := NetLog(path, 20000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Escalations) != 2 || len(truth.Recons) != 2 {
		t.Fatalf("truth = %+v", truth)
	}
	recs, hdr, err := storage.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Count < 15000 {
		t.Fatalf("suspiciously few records: %d", hdr.Count)
	}
	hourLvl, _ := s.Dim(0).LevelByName("Hour")
	sub24, _ := s.Dim(2).LevelByName("/24")
	dayLvl, _ := s.Dim(0).LevelByName("Day")

	// Timestamps within the configured window.
	startDay := model.DayCode(2004, 3, 1)
	for _, r := range recs {
		d := s.Dim(0).Up(0, dayLvl, r.Dims[0])
		if d < startDay || d >= startDay+3 {
			t.Fatalf("record outside time window: day %d", d)
		}
		if r.Dims[3] < 0 || r.Dims[3] > 65535 {
			t.Fatalf("port out of range: %d", r.Dims[3])
		}
	}

	// Escalation ground truth: peak-hour traffic into the planted
	// subnet must exceed the hour two before it by a clear factor.
	for _, ev := range truth.Escalations {
		byHour := map[int64]int{}
		for _, r := range recs {
			if s.Dim(2).Up(0, sub24, r.Dims[2]) == ev.TargetSubnet {
				byHour[s.Dim(0).Up(0, hourLvl, r.Dims[0])]++
			}
		}
		peak := byHour[ev.HourCode]
		before := byHour[ev.HourCode-2]
		if peak < 2*before || peak == 0 {
			t.Errorf("escalation at hour %d not visible: peak %d, before %d", ev.HourCode, peak, before)
		}
	}

	// Recon ground truth: distinct sources into the planted subnet on
	// the planted day must reach the configured fan-in.
	for _, ev := range truth.Recons {
		srcs := map[int64]bool{}
		for _, r := range recs {
			if s.Dim(2).Up(0, sub24, r.Dims[2]) == ev.TargetSubnet &&
				s.Dim(0).Up(0, dayLvl, r.Dims[0]) == ev.DayCode {
				srcs[r.Dims[1]] = true
			}
		}
		if len(srcs) < ev.Sources {
			t.Errorf("recon on day %d: %d distinct sources, want >= %d", ev.DayCode, len(srcs), ev.Sources)
		}
	}
}

func TestNetLogDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.rec")
	p2 := filepath.Join(dir, "b.rec")
	cfg := NetConfig{Days: 1, Seed: 5}
	if _, _, err := NetLog(p1, 2000, cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NetLog(p2, 2000, cfg); err != nil {
		t.Fatal(err)
	}
	a, ha, err := storage.ReadAll(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, hb, err := storage.ReadAll(p2)
	if err != nil {
		t.Fatal(err)
	}
	if ha.Count != hb.Count {
		t.Fatal("same seed produced different counts")
	}
	for i := range a {
		for j := range a[i].Dims {
			if a[i].Dims[j] != b[i].Dims[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
}
