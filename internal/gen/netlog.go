package gen

import (
	"math"
	"math/rand"

	"awra/internal/model"
	"awra/internal/storage"
)

// NetConfig describes the synthetic attack-log dataset with the
// Table 1 schema (Timestamp, Source, Target, TargetPort). Background
// traffic is heavy-tailed (Zipf sources/targets/ports) with a diurnal
// volume profile; on top of it the generator plants the two structures
// the Section 7.2 analysis queries look for:
//
//   - escalation events: a target /24 whose hourly attack volume grows
//     sharply over consecutive hours (the "network escalation
//     detection" query, a sibling match join over hours);
//   - recon events: many distinct sources probing one target /24
//     within one day (the "multi-recon detection" query, child/parent
//     match joins over IP prefixes).
type NetConfig struct {
	// Days of traffic starting at StartDay.
	Days int
	// StartYear/Month/Day anchor the timeline (default 2004-03-01, the
	// era of the LBL HoneyNet collection).
	StartYear  int64
	StartMonth int
	StartDay   int
	// Subnets is the number of distinct /24 target subnets.
	Subnets int
	// Sources is the number of distinct source IPs.
	Sources int
	// Escalations and Recons are the numbers of planted events.
	Escalations int
	Recons      int
	// ReconSources is the distinct-source fan-in of a recon event.
	ReconSources int
	// Seed makes generation deterministic.
	Seed int64
}

func (c NetConfig) withDefaults() NetConfig {
	if c.Days == 0 {
		c.Days = 7
	}
	if c.StartYear == 0 {
		c.StartYear, c.StartMonth, c.StartDay = 2004, 3, 1
	}
	if c.Subnets == 0 {
		c.Subnets = 256
	}
	if c.Sources == 0 {
		c.Sources = 4096
	}
	if c.Escalations == 0 {
		c.Escalations = 4
	}
	if c.Recons == 0 {
		c.Recons = 4
	}
	if c.ReconSources == 0 {
		c.ReconSources = 60
	}
	return c
}

// EscalationEvent is ground truth for one planted escalation.
type EscalationEvent struct {
	TargetSubnet int64 // /24 code
	HourCode     int64 // the hour where volume peaks
	Factor       float64
}

// ReconEvent is ground truth for one planted recon sweep.
type ReconEvent struct {
	TargetSubnet int64 // /24 code
	DayCode      int64
	Sources      int
}

// NetTruth reports what was planted.
type NetTruth struct {
	Escalations []EscalationEvent
	Recons      []ReconEvent
}

// NetSchema builds the Table 1 schema: t, U, T, P.
func NetSchema() (*model.Schema, error) {
	return model.NewSchema([]*model.Dimension{
		model.TimeDimension("t"),
		model.IPv4Dimension("U"),
		model.IPv4Dimension("T"),
		model.PortDimension("P"),
	})
}

// NetLog writes ~n records to path and returns the schema and the
// planted ground truth. The record count is approximate: planted
// events add a few percent on top of the background volume.
func NetLog(path string, n int64, c NetConfig) (*model.Schema, *NetTruth, error) {
	c = c.withDefaults()
	s, err := NetSchema()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	w, err := storage.Create(path, 4, 0)
	if err != nil {
		return nil, nil, err
	}

	// Address plan: targets in 10.0.x.0/24, sources spread over the
	// 1.0.0.0/8 - 9.0.0.0/8 space with Zipf popularity.
	subnetCode := func(i int) int64 { return model.IPCode(10, 0, i%256, 0)>>8 + int64(i/256)<<8 }
	srcZipf := rand.NewZipf(rng, 1.2, 1, uint64(c.Sources-1))
	tgtZipf := rand.NewZipf(rng, 1.1, 1, uint64(c.Subnets-1))
	portZipf := rand.NewZipf(rng, 1.3, 1, 1023)
	srcIP := func(i int64) int64 {
		return model.IPCode(1+int(i%9), int(i/9%250), int(i/2250%250), int(i%250))
	}

	startDay := model.DayCode(c.StartYear, c.StartMonth, c.StartDay)
	totalHours := c.Days * 24
	// Diurnal weights: peak near hour 14, trough near hour 2.
	hourWeight := make([]float64, totalHours)
	sum := 0.0
	for h := range hourWeight {
		hod := float64(h % 24)
		hourWeight[h] = 1 + 0.6*math.Sin((hod-8)/24*2*math.Pi)
		sum += hourWeight[h]
	}

	rec := model.Record{Dims: make([]int64, 4), Ms: []float64{}}
	emit := func(hourIdx int, src, tgt24, port int64) error {
		hc := startDay*24 + int64(hourIdx)
		sec := hc*3600 + rng.Int63n(3600)
		rec.Dims[0] = sec
		rec.Dims[1] = src
		rec.Dims[2] = tgt24<<8 + rng.Int63n(256)
		rec.Dims[3] = port
		return w.Write(&rec)
	}

	// Background traffic.
	for h := 0; h < totalHours; h++ {
		cnt := int64(float64(n) * hourWeight[h] / sum)
		for i := int64(0); i < cnt; i++ {
			src := srcIP(int64(srcZipf.Uint64()))
			tgt := subnetCode(int(tgtZipf.Uint64()))
			port := int64(portZipf.Uint64())
			if rng.Intn(10) == 0 {
				port = 1024 + rng.Int63n(64512)
			}
			if err := emit(h, src, tgt, port); err != nil {
				w.Close()
				return nil, nil, err
			}
		}
	}

	truth := &NetTruth{}
	perHourBase := float64(n) / float64(totalHours)

	// Escalation events: volume ramps x2, x4, x8 over three hours into
	// one target subnet (a worm outbreak signature).
	for e := 0; e < c.Escalations; e++ {
		h0 := 3 + rng.Intn(totalHours-6)
		tgt := subnetCode(c.Subnets + e) // a quiet subnet of its own
		factor := 8.0
		for step := 0; step < 3; step++ {
			cnt := int64(perHourBase * math.Pow(2, float64(step+1)) / 4)
			if cnt < 32 {
				cnt = 32
			}
			for i := int64(0); i < cnt; i++ {
				src := srcIP(int64(srcZipf.Uint64()))
				if err := emit(h0+step, src, tgt, 445); err != nil {
					w.Close()
					return nil, nil, err
				}
			}
		}
		truth.Escalations = append(truth.Escalations, EscalationEvent{
			TargetSubnet: tgt,
			HourCode:     startDay*24 + int64(h0+2),
			Factor:       factor,
		})
	}

	// Recon events: many distinct sources probe one subnet in one day.
	for r := 0; r < c.Recons; r++ {
		day := rng.Intn(c.Days)
		tgt := subnetCode(c.Subnets + c.Escalations + r)
		for i := 0; i < c.ReconSources; i++ {
			src := srcIP(int64(c.Sources + r*c.ReconSources + i))
			probes := 1 + rng.Intn(3)
			for p := 0; p < probes; p++ {
				if err := emit(day*24+rng.Intn(24), src, tgt, int64(portZipf.Uint64())); err != nil {
					w.Close()
					return nil, nil, err
				}
			}
		}
		truth.Recons = append(truth.Recons, ReconEvent{
			TargetSubnet: tgt,
			DayCode:      startDay + int64(day),
			Sources:      c.ReconSources,
		})
	}

	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return s, truth, nil
}
