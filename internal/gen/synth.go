// Package gen generates the evaluation datasets: the synthetic
// multidimensional workload of Section 7.1 and a network attack-log
// generator that substitutes for the proprietary DShield / LBL
// HoneyNet datasets of Section 7.2. The substitution preserves what
// the paper's queries key on — escalating per-hour traffic in target
// subnets and many-source reconnaissance fan-in — by planting those
// structures explicitly (with ground truth returned to the caller),
// while drawing background traffic from heavy-tailed distributions.
package gen

import (
	"fmt"
	"math/rand"

	"awra/internal/model"
	"awra/internal/storage"
)

// SynthConfig describes the paper's synthetic dataset: d dimension
// attributes sharing one fixed-fanout hierarchy ("four domains in the
// domain hierarchy... any value in any domain covers 10 distinct
// values of its sub-domains"), values drawn independently and
// uniformly.
type SynthConfig struct {
	// Dims is the number of dimension attributes (the paper uses 4).
	Dims int
	// Depth is the number of concrete domains per hierarchy (the paper
	// uses 3 concrete + ALL).
	Depth int
	// Fanout is the per-level fanout (the paper uses 10).
	Fanout int
	// BaseRange bounds base-domain codes; 0 defaults to Fanout^Depth
	// (a full tree).
	BaseRange int64
	// Measures is the number of measure attributes (>=1; measure 0 is
	// uniform in [0,100)).
	Measures int
	// Seed makes generation deterministic.
	Seed int64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Dims == 0 {
		c.Dims = 4
	}
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.BaseRange == 0 {
		c.BaseRange = 1
		for i := 0; i < c.Depth; i++ {
			c.BaseRange *= int64(c.Fanout)
		}
	}
	if c.Measures == 0 {
		c.Measures = 1
	}
	return c
}

// SynthSchema builds the schema for a config.
func SynthSchema(c SynthConfig) (*model.Schema, error) {
	c = c.withDefaults()
	dims := make([]*model.Dimension, c.Dims)
	for i := range dims {
		dims[i] = model.FixedFanout(fmt.Sprintf("A%d", i+1), c.Depth, c.Fanout)
	}
	ms := make([]string, c.Measures)
	for i := range ms {
		ms[i] = fmt.Sprintf("m%d", i)
	}
	return model.NewSchema(dims, ms...)
}

// Synth writes n uniform records to path and returns the schema.
func Synth(path string, n int64, c SynthConfig) (*model.Schema, error) {
	c = c.withDefaults()
	s, err := SynthSchema(c)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	w, err := storage.Create(path, c.Dims, c.Measures)
	if err != nil {
		return nil, err
	}
	rec := model.Record{Dims: make([]int64, c.Dims), Ms: make([]float64, c.Measures)}
	for i := int64(0); i < n; i++ {
		for j := range rec.Dims {
			rec.Dims[j] = rng.Int63n(c.BaseRange)
		}
		for j := range rec.Ms {
			rec.Ms[j] = float64(rng.Intn(100))
		}
		if err := w.Write(&rec); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// SynthRecords generates records in memory (testing convenience).
func SynthRecords(n int, c SynthConfig) (*model.Schema, []model.Record, error) {
	c = c.withDefaults()
	s, err := SynthSchema(c)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	recs := make([]model.Record, n)
	for i := range recs {
		dims := make([]int64, c.Dims)
		for j := range dims {
			dims[j] = rng.Int63n(c.BaseRange)
		}
		ms := make([]float64, c.Measures)
		for j := range ms {
			ms[j] = float64(rng.Intn(100))
		}
		recs[i] = model.Record{Dims: dims, Ms: ms}
	}
	return s, recs, nil
}
