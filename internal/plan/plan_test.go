package plan

import (
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
)

// netSchema is the Table 1 schema: t, U, T, P.
func netSchema(t *testing.T) *model.Schema {
	t.Helper()
	s, err := model.NewSchema([]*model.Dimension{
		model.TimeDimension("t"),
		model.IPv4Dimension("U"),
		model.IPv4Dimension("T"),
		model.PortDimension("P"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func lvl(t *testing.T, s *model.Schema, dim int, name string) model.Level {
	t.Helper()
	l, err := s.Dim(dim).LevelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestPaperOrderExample1 reproduces the Section 5.3.1 example:
// S = g_{(t:Day, T:IP, U:IP),count}(D) under sort key
// <t:Month, T:IP, U:IP>. The finalized entries are ordered by
// <t:Month, T:IP, U:IP> and the footprint is ~31 (days per month).
func TestPaperOrderExample1(t *testing.T) {
	s := netSchema(t)
	day := lvl(t, s, 0, "Day")
	g, err := s.MakeGran(map[string]string{"t": "Day", "T": "IP", "U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewWorkflow(s).Basic("S", g, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	month := lvl(t, s, 0, "Month")
	key := model.SortKey{{Dim: 0, Lvl: month}, {Dim: 2, Lvl: 0}, {Dim: 1, Lvl: 0}}
	pl, err := Build(c, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := pl.Nodes[0]
	if got := n.OutOrder.String(s); got != "<t:Month, T:IP, U:IP>" {
		t.Errorf("out order = %s", got)
	}
	if n.EstCells < 28 || n.EstCells > 32 {
		t.Errorf("estimated cells = %v, want ~31 (days per month)", n.EstCells)
	}
	_ = day
	if len(n.Arcs) != 1 || n.Arcs[0].Kind != ArcFact {
		t.Fatalf("arcs = %+v", n.Arcs)
	}
	for _, sh := range n.Arcs[0].Shift {
		if sh != 0 {
			t.Errorf("unexpected shift %d on a plain aggregation", sh)
		}
	}
}

// TestPaperOrderExample2: same measure under sort key
// <t:Hour, T:IP, U:IP> — entries finalize only when the day switches,
// so the output order degrades to <t:Day> and the footprint is the
// day's worth of IP combinations (full cardinalities).
func TestPaperOrderExample2(t *testing.T) {
	s := netSchema(t)
	g, err := s.MakeGran(map[string]string{"t": "Day", "T": "IP", "U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewWorkflow(s).Basic("S", g, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	hour := lvl(t, s, 0, "Hour")
	key := model.SortKey{{Dim: 0, Lvl: hour}, {Dim: 2, Lvl: 0}, {Dim: 1, Lvl: 0}}
	pl, err := Build(c, key, &Stats{BaseCard: []float64{0, 1000, 1000, 0}})
	if err != nil {
		t.Fatal(err)
	}
	n := pl.Nodes[0]
	if got := n.OutOrder.String(s); got != "<t:Day>" {
		t.Errorf("out order = %s, want <t:Day>", got)
	}
	// T and U are uncovered: footprint ~ 1000 * 1000.
	if n.EstCells < 1e5 || n.EstCells > 1e7 {
		t.Errorf("estimated cells = %v, want ~1e6", n.EstCells)
	}
}

// TestPaperSlackExample: S_ratio = S_2 |x|_pc S_1 with the data sorted
// by <t:Day> (the Section 5.3.1 slack example). The parent stream
// (monthly) forces the ratio node's comparable key for that arc to
// coarsen to months.
func TestPaperSlackExample(t *testing.T) {
	s := netSchema(t)
	gDay, _ := s.MakeGran(map[string]string{"t": "Day"})
	gMonth, _ := s.MakeGran(map[string]string{"t": "Month"})
	day := lvl(t, s, 0, "Day")
	c, err := core.NewWorkflow(s).
		Basic("S2", gDay, agg.Count, -1).
		Rollup("S1", gMonth, "S2", agg.Sum).
		FromParent("parent", gDay, "S1", agg.Sum).
		Combine("ratio", []string{"S2", "parent"}, core.Ratio(0, 1)).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(c, model.SortKey{{Dim: 0, Lvl: day}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// S1 (monthly rollup of a daily stream): cmp coarsens to Month.
	i1, _ := c.Index("S1")
	if got := pl.Nodes[i1].OutOrder.String(s); got != "<t:Month>" {
		t.Errorf("S1 out order = %s", got)
	}
	// parent (pc join): source arc comparable key is at Month, base
	// arc at Day; the node's output order degrades to Month.
	ip, _ := c.Index("parent")
	if got := pl.Nodes[ip].OutOrder.String(s); got != "<t:Month>" {
		t.Errorf("parent out order = %s", got)
	}
	var kinds []string
	for _, a := range pl.Nodes[ip].Arcs {
		kinds = append(kinds, a.Kind.String()+":"+a.CmpKey.String(s))
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "source:<t:Month>") || !strings.Contains(joined, "base:<t:Day>") {
		t.Errorf("parent arcs = %s", joined)
	}
	// ratio combines S2 (day order) with parent (month order): its
	// entries can only be emitted in month batches — the paper's
	// (-31, 0) slack expressed as a coarsened comparable order.
	ir, _ := c.Index("ratio")
	if got := pl.Nodes[ir].OutOrder.String(s); got != "<t:Month>" {
		t.Errorf("ratio out order = %s, want <t:Month>", got)
	}
}

// TestSiblingShift: a six-hour trailing window (Example 4) under an
// hour-sorted dataset needs a watermark shift of 5 hours; under a
// day-sorted dataset the shift coarsens to ceil(5/24) = 1 day.
func TestSiblingShift(t *testing.T) {
	s := netSchema(t)
	gHour, _ := s.MakeGran(map[string]string{"t": "Hour"})
	hour := lvl(t, s, 0, "Hour")
	day := lvl(t, s, 0, "Day")
	c, err := core.NewWorkflow(s).
		Basic("cnt", gHour, agg.Count, -1).
		Sliding("avg", "cnt", agg.Avg, []core.Window{{Dim: 0, Lo: 0, Hi: 5}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	iAvg, _ := c.Index("avg")

	pl, err := Build(c, model.SortKey{{Dim: 0, Lvl: hour}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srcArc := pl.Nodes[iAvg].Arcs[0]
	if srcArc.Kind != ArcSource || len(srcArc.Shift) != 1 || srcArc.Shift[0] != 5 {
		t.Errorf("hour-sorted sibling arc = %+v, want shift 5", srcArc)
	}

	pl, err = Build(c, model.SortKey{{Dim: 0, Lvl: day}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srcArc = pl.Nodes[iAvg].Arcs[0]
	if len(srcArc.Shift) != 1 || srcArc.Shift[0] != 1 {
		t.Errorf("day-sorted sibling arc shift = %v, want ceil(5/24)=1", srcArc.Shift)
	}
	if got := srcArc.CmpKey.String(s); got != "<t:Day>" {
		t.Errorf("day-sorted sibling cmp = %s", got)
	}
	// Backward-only windows need no shift.
	c2, err := core.NewWorkflow(s).
		Basic("cnt", gHour, agg.Count, -1).
		Sliding("trail", "cnt", agg.Avg, []core.Window{{Dim: 0, Lo: -5, Hi: 0}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	pl, err = Build(c2, model.SortKey{{Dim: 0, Lvl: hour}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := c2.Index("trail")
	if sh := pl.Nodes[it].Arcs[0].Shift[0]; sh != 0 {
		t.Errorf("backward window shift = %d, want 0", sh)
	}
}

// TestGranAtALLTruncatesKey: a measure with t at D_ALL under a
// t-leading sort key has no ordering information at all.
func TestGranAtALLTruncatesKey(t *testing.T) {
	s := netSchema(t)
	g, _ := s.MakeGran(map[string]string{"U": "/24"})
	day := lvl(t, s, 0, "Day")
	c, err := core.NewWorkflow(s).Basic("perSrc", g, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(c, model.SortKey{{Dim: 0, Lvl: day}, {Dim: 1, Lvl: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.Nodes[0].Arcs[0].CmpKey); got != 0 {
		t.Errorf("cmp key has %d parts, want 0", got)
	}
	// With U leading instead, the key covers the measure.
	pl, err = Build(c, model.SortKey{{Dim: 1, Lvl: 0}, {Dim: 0, Lvl: day}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l24 := lvl(t, s, 1, "/24")
	want := model.SortKey{{Dim: 1, Lvl: l24}}
	got := pl.Nodes[0].Arcs[0].CmpKey
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("cmp key = %s, want %s", got.String(s), want.String(s))
	}
}

func TestBuildErrors(t *testing.T) {
	s := netSchema(t)
	g, _ := s.MakeGran(map[string]string{"t": "Hour"})
	c, err := core.NewWorkflow(s).Basic("cnt", g, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(c, model.SortKey{{Dim: 9, Lvl: 0}}, nil); err == nil {
		t.Error("bad dimension accepted")
	}
	if _, err := Build(c, model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 0, Lvl: 1}}, nil); err == nil {
		t.Error("duplicate dimension accepted")
	}
}

func TestPlanString(t *testing.T) {
	s := netSchema(t)
	gHour, _ := s.MakeGran(map[string]string{"t": "Hour"})
	hour := lvl(t, s, 0, "Hour")
	c, err := core.NewWorkflow(s).
		Basic("cnt", gHour, agg.Count, -1).
		Sliding("avg", "cnt", agg.Avg, []core.Window{{Dim: 0, Lo: 0, Hi: 5}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(c, model.SortKey{{Dim: 0, Lvl: hour}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	str := pl.String()
	for _, frag := range []string{"sort key", "cnt", "avg", "<- fact", "<- source", "shift"} {
		if !strings.Contains(str, frag) {
			t.Errorf("plan string missing %q:\n%s", frag, str)
		}
	}
}

func TestPlanDOT(t *testing.T) {
	s := netSchema(t)
	gHour, _ := s.MakeGran(map[string]string{"t": "Hour"})
	hour := lvl(t, s, 0, "Hour")
	c, err := core.NewWorkflow(s).
		Basic("cnt", gHour, agg.Count, -1).
		Sliding("avg", "cnt", agg.Avg, []core.Window{{Dim: 0, Lo: 0, Hi: 5}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(c, model.SortKey{{Dim: 0, Lvl: hour}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dot := pl.DOT()
	for _, frag := range []string{"digraph evalplan", "cylinder", "shift", "style=dashed", "cnt", "avg"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("plan DOT missing %q", frag)
		}
	}
}

func TestStatsDimCardDefaults(t *testing.T) {
	s := netSchema(t)
	var st *Stats
	if got := st.DimCard(s, 0, 0); got != 1e6 {
		t.Errorf("nil stats base card = %v", got)
	}
	st = &Stats{BaseCard: []float64{100}}
	day := lvl(t, s, 0, "Day")
	if got := st.DimCard(s, 0, day); got != 1 {
		t.Errorf("card clamped = %v, want 1", got)
	}
}
