package plan

import "awra/internal/obs"

// PublishEstimates records each node's optimizer-estimated cell count
// into the recorder's per-node metric family before execution, so
// post-run profiles (EXPLAIN ANALYZE) can show estimate-vs-actual
// columns without re-deriving the plan. Nil-safe on rec.
func (p *Plan) PublishEstimates(rec *obs.Recorder) {
	if p == nil || rec == nil {
		return
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		rec.SetNodeEstimate(p.Workflow.Measures[n.Measure].Name, n.EstCells)
	}
}

// ArcLabel names an arc for per-node stats: "fact", or the producing
// measure's name, suffixed with the arc kind for base arcs.
func (p *Plan) ArcLabel(a *Arc) string {
	switch a.Kind {
	case ArcFact:
		return "fact"
	case ArcBase:
		return p.Workflow.Measures[a.From].Name + " (base)"
	default:
		return p.Workflow.Measures[a.From].Name
	}
}
