// Package plan builds streaming aggregation plans (Section 5.2-5.3 of
// the paper): given a compiled workflow and the dataset's sort key, it
// derives for every measure node the order and slack of each incoming
// update stream (the algorithm of Table 6), the node's output order,
// and an estimate of the node's live hash-table footprint. The
// sort/scan engine executes these plans; the optimizer searches sort
// keys by comparing their estimated footprints.
//
// Orders follow Proposition 2: every stream is ordered by a (possibly
// truncated, possibly coarsened) prefix of the dataset sort key's
// attribute sequence. Slack is realized as per-arc "comparable keys"
// with conservative watermark shifts:
//
//   - Each arc gets a comparable key CmpKey — the longest prefix of the
//     incoming stream's order that both the node's entries and the
//     stream's watermark can be generalized to. When an entry is
//     coarser than a stream-order part, the part is coarsened to the
//     entry's level and the key is truncated there (comparison beyond a
//     coarsened part is unsound, which is Table 6's early RETURN).
//   - A sibling window with Hi > 0 means the stream can still update
//     cells up to Hi code units behind it (the paper's slack): the
//     watermark is shifted down by ceil(Hi / minFanout) in the
//     comparable part's units — Table 6's card() division, taken
//     against a lower bound so it stays conservative — and the key is
//     truncated after the shifted part.
//
// An entry is finalized when, for every incoming arc, its projection
// onto the arc's comparable key is strictly below the arc's shifted
// watermark (the watermark-array minimum of Table 8).
package plan

import (
	"fmt"
	"strings"

	"awra/internal/core"
	"awra/internal/model"
)

// ArcKind distinguishes the inputs of a node.
type ArcKind int

const (
	// ArcFact is the raw dataset scan feeding a basic measure.
	ArcFact ArcKind = iota
	// ArcSource carries finalized entries of a source measure.
	ArcSource
	// ArcBase carries finalized entries of the cell-providing base
	// measure (S_base), for fromparent/sibling/combine nodes.
	ArcBase
)

func (k ArcKind) String() string {
	switch k {
	case ArcFact:
		return "fact"
	case ArcSource:
		return "source"
	default:
		return "base"
	}
}

// Arc is one incoming update stream of a node, with its finalization
// metadata.
type Arc struct {
	Kind ArcKind
	// From is the producing measure's index; -1 for the fact scan.
	From int
	// Order is the incoming stream's order (the producer's output
	// order; the dataset sort key for ArcFact).
	Order model.SortKey
	// CmpKey is the comparable key: entry keys and this arc's
	// watermark are both projected onto it and compared
	// lexicographically.
	CmpKey model.SortKey
	// Shift subtracts from the watermark's code at the corresponding
	// CmpKey part before comparison (conservative slack adjustment);
	// aligned with CmpKey.
	Shift []int64
}

// Node is the streaming plan for one measure.
type Node struct {
	// Measure indexes into Compiled.Measures.
	Measure int
	Arcs    []Arc
	// OutOrder is the order of the node's finalized-entry stream: the
	// longest common identical prefix of the arcs' comparable keys.
	OutOrder model.SortKey
	// EstCells estimates the maximum number of live hash entries.
	EstCells float64
	// EstSource labels where EstCells came from: SourceAssumed,
	// SourceCollected, or SourceMeasured.
	EstSource string
}

// Plan is a streaming aggregation plan for one sort/scan pass.
type Plan struct {
	Workflow *core.Compiled
	SortKey  model.SortKey
	Nodes    []Node // indexed like Workflow.Measures
	// EstBytes estimates the plan's peak memory footprint.
	EstBytes float64
}

// Estimate-source labels, in increasing order of trust. They answer
// the question the paper's Section 6 leaves open ("the precision of
// this [card()] function will only affect the size estimation"): where
// did a node's cardinality estimate come from?
const (
	// SourceAssumed: paper-default cardinalities (1e6 per dimension).
	SourceAssumed = "assumed"
	// SourceCollected: linear-counting estimates from scanning the
	// collection (internal/stats) or caller-supplied cardinalities.
	SourceCollected = "collected"
	// SourceMeasured: true cell counts observed by a previous completed
	// run on this collection (the query-history feedback loop).
	SourceMeasured = "measured"
)

// Stats supplies cardinality estimates for footprint estimation.
type Stats struct {
	// BaseCard estimates the number of distinct base-domain values per
	// dimension appearing in the data. Zero entries default to 1e6.
	BaseCard []float64
	// Records is the (estimated) fact-table size. When positive, cell
	// estimates are additionally clamped by the expected number of
	// records per finalization group — a group cannot hold more
	// distinct cells than records.
	Records float64
	// Source labels the provenance of BaseCard/Records (SourceAssumed
	// when empty).
	Source string
	// Measured, when non-nil, returns the measured total cell count for
	// a node content signature (core.NodeSignature) on the collection
	// being planned. A hit caps the node's estimate and labels it
	// SourceMeasured.
	Measured func(sig string) (cells float64, ok bool)
}

// SourceLabel returns the stats' provenance label, defaulting to
// SourceAssumed. Nil-safe.
func (st *Stats) SourceLabel() string {
	if st == nil || st.Source == "" {
		return SourceAssumed
	}
	return st.Source
}

// DimCard estimates the number of distinct codes of dimension dim at
// the given level.
func (st *Stats) DimCard(s *model.Schema, dim int, lvl model.Level) float64 {
	base := 1e6
	if st != nil && dim < len(st.BaseCard) && st.BaseCard[dim] > 0 {
		base = st.BaseCard[dim]
	}
	c := base / s.Dim(dim).Fanout(0, lvl)
	if c < 1 {
		c = 1
	}
	return c
}

// Build derives the streaming plan for a compiled workflow under the
// given dataset sort key. It fails if the sort key is invalid; any
// workflow has a plan for any sort key (Theorem 3) — a bad key merely
// yields empty comparable keys and a large footprint estimate.
func Build(c *core.Compiled, sortKey model.SortKey, stats *Stats) (*Plan, error) {
	sk, err := sortKey.Normalize(c.Schema)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	seen := map[int]bool{}
	for _, p := range sk {
		if seen[p.Dim] {
			return nil, fmt.Errorf("plan: sort key lists dimension %q twice", c.Schema.Dim(p.Dim).Name())
		}
		seen[p.Dim] = true
	}
	pl := &Plan{Workflow: c, SortKey: sk, Nodes: make([]Node, len(c.Measures))}
	for i, m := range c.Measures {
		node := Node{Measure: i}
		switch m.Kind {
		case core.KindBasic:
			node.Arcs = append(node.Arcs, buildArc(c, m, ArcFact, -1, sk, sk))
		default:
			for _, s := range m.Sources {
				node.Arcs = append(node.Arcs, buildArc(c, m, ArcSource, s, pl.Nodes[s].OutOrder, sk))
			}
			if m.Base >= 0 && !containsIdx(m.Sources, m.Base) {
				node.Arcs = append(node.Arcs, buildArc(c, m, ArcBase, m.Base, pl.Nodes[m.Base].OutOrder, sk))
			}
		}
		node.OutOrder = commonOutOrder(node.Arcs)
		node.EstCells = estimateCells(c, m, &node, stats)
		node.EstSource = stats.SourceLabel()
		// Measured feedback: a completed run's true cell count for this
		// node on this collection caps the formula estimate. Live cells
		// never exceed the node's total output cardinality, so the cap
		// is sound; keyed by content signature so re-compiled workflows
		// (e.g. multipass sub-plans) still match.
		if stats != nil && stats.Measured != nil {
			if cells, ok := stats.Measured(c.NodeSignature(i)); ok && cells > 0 {
				if cells < node.EstCells {
					node.EstCells = cells
				}
				node.EstSource = SourceMeasured
			}
		}
		pl.Nodes[i] = node
		pl.EstBytes += node.EstCells * float64(48+m.Codec.KeyBytes())
	}
	return pl, nil
}

func containsIdx(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// buildArc computes the comparable key and watermark shifts for one
// incoming stream, per the rules in the package comment.
func buildArc(c *core.Compiled, m *core.Measure, kind ArcKind, from int, order model.SortKey, _ model.SortKey) Arc {
	arc := Arc{Kind: kind, From: from, Order: order}
	sch := c.Schema
	g := m.Gran
	window := map[int]core.Window{}
	if kind == ArcSource && m.Kind == core.KindSibling {
		for _, w := range m.Windows {
			window[w.Dim] = w
		}
	}
	for _, part := range order {
		dim := part.Dim
		gl := g[dim]
		if gl == sch.Dim(dim).ALL() {
			// Entries carry no information on this attribute; the key
			// ends here.
			break
		}
		if gl <= part.Lvl {
			// Entries refine the stream's order part: compare at the
			// stream's level.
			shift := int64(0)
			if w, ok := window[dim]; ok && w.Hi > 0 {
				mf := sch.Dim(dim).MinFanout(gl, part.Lvl)
				shift = (w.Hi + mf - 1) / mf
			}
			arc.CmpKey = append(arc.CmpKey, part)
			arc.Shift = append(arc.Shift, shift)
			if shift != 0 {
				// Lexicographic comparison beyond a shifted part is
				// unsound.
				break
			}
			continue
		}
		// Entries are coarser than the stream part: coarsen the
		// watermark to the entry level, then stop (within one coarse
		// group the stream is not ordered by later parts).
		arc.CmpKey = append(arc.CmpKey, model.SortPart{Dim: dim, Lvl: gl})
		arc.Shift = append(arc.Shift, 0)
		break
	}
	return arc
}

// commonOutOrder returns the coarsest common prefix of the arcs'
// comparable keys: per position, all arcs must order the same
// dimension, and the output takes the coarsest level among them.
// Emission batches are non-decreasing under it (an entry held back by
// arc s has a strictly larger projection under CmpKey_s than every
// already-emitted entry, and coarsening a trailing part preserves >=);
// a position where any arc was coarsened ends the key, since
// lexicographic comparison beyond a coarsened part is unsound.
func commonOutOrder(arcs []Arc) model.SortKey {
	if len(arcs) == 0 {
		return nil
	}
	var out model.SortKey
	for j := 0; ; j++ {
		var part model.SortPart
		coarsened := false
		for i, a := range arcs {
			if j >= len(a.CmpKey) {
				return out
			}
			p := a.CmpKey[j]
			if i == 0 {
				part = p
				continue
			}
			if p.Dim != part.Dim {
				return out
			}
			if p.Lvl != part.Lvl {
				coarsened = true
				if p.Lvl > part.Lvl {
					part.Lvl = p.Lvl
				}
			}
		}
		out = append(out, part)
		if coarsened {
			return out
		}
	}
}

// estimateCells estimates a node's maximum number of simultaneously
// live hash entries: for each non-ALL dimension, entries only
// accumulate within the current comparable-key prefix group, so a
// dimension covered by the node's output order contributes
// fanout(gran level -> order level); uncovered dimensions contribute
// their full cardinality at the gran level. Sibling windows widen
// their dimension by the window span (pending cells).
func estimateCells(c *core.Compiled, m *core.Measure, node *Node, stats *Stats) float64 {
	sch := c.Schema
	covered := map[int]model.Level{}
	for _, p := range node.OutOrder {
		covered[p.Dim] = p.Lvl
	}
	est := 1.0
	for dim := 0; dim < sch.NumDims(); dim++ {
		gl := m.Gran[dim]
		if gl == sch.Dim(dim).ALL() {
			continue
		}
		var f float64
		if lvl, ok := covered[dim]; ok {
			f = sch.Dim(dim).Fanout(gl, lvl)
		} else {
			f = stats.DimCard(sch, dim, gl)
		}
		if m.Kind == core.KindSibling {
			for _, w := range m.Windows {
				if w.Dim == dim {
					f += float64(w.Hi - w.Lo)
				}
			}
		}
		est *= f
	}
	// Data-aware clamp: live cells are also bounded by the records
	// that can arrive before the finalization group completes.
	if stats != nil && stats.Records > 0 {
		groupCard := 1.0
		for _, p := range node.OutOrder {
			groupCard *= stats.DimCard(sch, p.Dim, p.Lvl)
		}
		bound := stats.Records / groupCard
		if bound < 1 {
			bound = 1
		}
		if bound < est {
			est = bound
		}
	}
	return est
}

// DOT renders the plan's evaluation graph (the paper's Figures 4-5):
// one node per operator with its order and footprint estimate, one
// edge per update stream labelled with the comparable key and shift.
func (p *Plan) DOT() string {
	var b strings.Builder
	sch := p.Workflow.Schema
	b.WriteString("digraph evalplan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	fmt.Fprintf(&b, "  fact [label=%q, shape=cylinder];\n", "D sorted by "+p.SortKey.String(sch))
	for i, n := range p.Nodes {
		m := p.Workflow.Measures[i]
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i,
			fmt.Sprintf("%s\\n%s %s\\nout %s, ~%.0f cells",
				m.Name, m.Kind, sch.GranString(m.Gran), n.OutOrder.String(sch), n.EstCells))
		for _, a := range n.Arcs {
			src := "fact"
			if a.From >= 0 {
				src = fmt.Sprintf("n%d", a.From)
			}
			label := fmt.Sprintf("%s %s", a.Kind, a.CmpKey.String(sch))
			for _, sh := range a.Shift {
				if sh != 0 {
					label += fmt.Sprintf(" shift %v", a.Shift)
					break
				}
			}
			style := ""
			if a.Kind == ArcBase {
				style = ", style=dashed"
			}
			fmt.Fprintf(&b, "  %s -> n%d [label=%q, fontsize=8%s];\n", src, i, label, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the plan for humans: one line per node with arcs,
// orders, shifts and footprint estimates.
func (p *Plan) String() string {
	var b strings.Builder
	sch := p.Workflow.Schema
	fmt.Fprintf(&b, "sort key %s, est %.0f bytes\n", p.SortKey.String(sch), p.EstBytes)
	for i, n := range p.Nodes {
		m := p.Workflow.Measures[i]
		fmt.Fprintf(&b, "  %-16s %-10s gran %-24s out %-20s cells %.0f\n",
			m.Name, m.Kind, sch.GranString(m.Gran), n.OutOrder.String(sch), n.EstCells)
		for _, a := range n.Arcs {
			src := "D"
			if a.From >= 0 {
				src = p.Workflow.Measures[a.From].Name
			}
			fmt.Fprintf(&b, "    <- %-6s %-16s cmp %-20s shift %v\n", a.Kind, src, a.CmpKey.String(sch), a.Shift)
		}
	}
	return b.String()
}
