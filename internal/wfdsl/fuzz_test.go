package wfdsl

import (
	"awra/internal/core"
	"strings"
	"testing"
)

// FuzzParse checks the DSL parser never panics and that anything it
// accepts compiles into a consistent workflow.
func FuzzParse(f *testing.F) {
	f.Add(sampleNet)
	f.Add("schema net\nbasic a gran(t=Hour) agg=count\n")
	f.Add("schema synth dims=2\nbasic a gran(A1=L0) agg=count\nsliding s src=a agg=avg window A1 -2..2\n")
	f.Add("schema net\nbasic a gran(t=Hour) agg=count where \"m0 > 1 and dim U = 3\"\n")
	f.Add("# comment only\n")
	f.Add("schema net\ncombine c src=a,b fc=ratio\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if p.Schema == nil || p.Compiled == nil {
			t.Fatal("accepted input produced nil results")
		}
		// Accepted workflows must translate to algebra (Theorem 2).
		for _, name := range p.Compiled.Outputs() {
			if strings.HasPrefix(name, "__") {
				continue
			}
			if _, err := core.Translate(p.Compiled, name); err != nil {
				t.Fatalf("accepted measure %q fails translation: %v", name, err)
			}
		}
	})
}
