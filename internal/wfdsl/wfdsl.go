// Package wfdsl parses a small text syntax for aggregation workflows,
// used by the awquery command line tool. One declaration per line:
//
//	schema net
//	basic   Count   gran(t=Hour, U=IP) agg=count
//	basic   Busy    gran(t=Hour) agg=sum m=0 where "m0 > 5"
//	rollup  sCount  gran(t=Hour) src=Count agg=count where "m0 > 5"
//	parent  pShare  gran(t=Day) src=Monthly agg=sum
//	sliding avg6    src=sCount agg=avg window t -5..0
//	combine ratio   src=avg6,sCount fc=ratio
//
// Lines starting with '#' are comments. Schemas are chosen from the
// built-in catalog: "net" (the paper's Table 1 network-log schema) or
// "synth [dims=4] [depth=3] [fanout=10] [measures=1]".
package wfdsl

import (
	"fmt"
	"strconv"
	"strings"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/gen"
	"awra/internal/model"
)

// Parsed is the result of parsing a workflow file.
type Parsed struct {
	Schema   *model.Schema
	Workflow *core.Workflow
	Compiled *core.Compiled
}

// Parse parses the DSL text and compiles the workflow.
func Parse(text string) (*Parsed, error) {
	var (
		schema *model.Schema
		wf     *core.Workflow
	)
	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("wfdsl: line %d: %w", ln+1, err)
		}
		switch fields[0] {
		case "schema":
			if schema != nil {
				return nil, fmt.Errorf("wfdsl: line %d: schema declared twice", ln+1)
			}
			schema, err = parseSchema(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("wfdsl: line %d: %w", ln+1, err)
			}
			wf = core.NewWorkflow(schema)
		case "basic", "rollup", "parent", "sliding", "combine":
			if wf == nil {
				return nil, fmt.Errorf("wfdsl: line %d: declare the schema first", ln+1)
			}
			if err := parseMeasure(schema, wf, fields); err != nil {
				return nil, fmt.Errorf("wfdsl: line %d: %w", ln+1, err)
			}
		default:
			return nil, fmt.Errorf("wfdsl: line %d: unknown declaration %q", ln+1, fields[0])
		}
	}
	if wf == nil {
		return nil, fmt.Errorf("wfdsl: no schema declaration")
	}
	c, err := wf.Compile()
	if err != nil {
		return nil, err
	}
	return &Parsed{Schema: schema, Workflow: wf, Compiled: c}, nil
}

// tokenize splits a line into fields, keeping double-quoted strings
// (used for where-clauses) as single tokens without the quotes.
func tokenize(line string) ([]string, error) {
	var out []string
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := strings.IndexByte(line[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("unterminated quote")
			}
			out = append(out, line[i+1:i+1+j])
			i += j + 2
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}

func parseSchema(args []string) (*model.Schema, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("schema needs a name (net or synth)")
	}
	switch args[0] {
	case "net":
		return gen.NetSchema()
	case "synth":
		cfg := gen.SynthConfig{}
		for _, a := range args[1:] {
			k, v, ok := strings.Cut(a, "=")
			if !ok {
				return nil, fmt.Errorf("bad synth option %q", a)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad synth option %q: %v", a, err)
			}
			switch k {
			case "dims":
				cfg.Dims = n
			case "depth":
				cfg.Depth = n
			case "fanout":
				cfg.Fanout = n
			case "measures":
				cfg.Measures = n
			default:
				return nil, fmt.Errorf("unknown synth option %q", k)
			}
		}
		return gen.SynthSchema(cfg)
	}
	return nil, fmt.Errorf("unknown schema %q (net, synth)", args[0])
}

// parseGran parses "gran(t=Hour, U=IP)" (spaces optional).
func parseGran(s *model.Schema, tok string) (model.Gran, error) {
	if !strings.HasPrefix(tok, "gran(") || !strings.HasSuffix(tok, ")") {
		return nil, fmt.Errorf("expected gran(...), got %q", tok)
	}
	body := tok[len("gran(") : len(tok)-1]
	parts := map[string]string{}
	if strings.TrimSpace(body) != "" {
		for _, p := range strings.Split(body, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok {
				return nil, fmt.Errorf("bad granularity component %q", p)
			}
			parts[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	return s.MakeGran(parts)
}

// parsePred parses a where-clause: conjunctions of "mI op const" and
// "dim NAME op const" joined by "and".
func parsePred(s *model.Schema, text string) (core.Predicate, error) {
	var preds []core.Predicate
	for _, clause := range strings.Split(text, " and ") {
		fields := strings.Fields(clause)
		if len(fields) == 4 && fields[0] == "dim" {
			dim, err := s.DimIndex(fields[1])
			if err != nil {
				return core.Predicate{}, err
			}
			op, err := parseOp(fields[2])
			if err != nil {
				return core.Predicate{}, err
			}
			c, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return core.Predicate{}, fmt.Errorf("bad constant %q", fields[3])
			}
			preds = append(preds, core.DimWhere(dim, op, c))
			continue
		}
		if len(fields) == 3 && strings.HasPrefix(fields[0], "m") {
			idx := 0
			if fields[0] != "m" {
				var err error
				idx, err = strconv.Atoi(fields[0][1:])
				if err != nil {
					return core.Predicate{}, fmt.Errorf("bad measure reference %q", fields[0])
				}
			}
			op, err := parseOp(fields[1])
			if err != nil {
				return core.Predicate{}, err
			}
			c, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return core.Predicate{}, fmt.Errorf("bad constant %q", fields[2])
			}
			preds = append(preds, core.MWhere(idx, op, c))
			continue
		}
		return core.Predicate{}, fmt.Errorf("cannot parse clause %q (want \"mI op c\" or \"dim NAME op c\")", clause)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return core.And(preds...), nil
}

func parseOp(s string) (core.CmpOp, error) {
	switch s {
	case "<":
		return core.Lt, nil
	case "<=":
		return core.Le, nil
	case "=", "==":
		return core.Eq, nil
	case "!=", "<>":
		return core.Ne, nil
	case ">=":
		return core.Ge, nil
	case ">":
		return core.Gt, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", s)
}

// parseWindow parses "window DIM LO..HI" already split into tokens
// ("window", dim, "lo..hi").
func parseWindow(s *model.Schema, dim, span string) (core.Window, error) {
	d, err := s.DimIndex(dim)
	if err != nil {
		return core.Window{}, err
	}
	lo, hi, ok := strings.Cut(span, "..")
	if !ok {
		return core.Window{}, fmt.Errorf("bad window span %q (want LO..HI)", span)
	}
	l, err := strconv.ParseInt(lo, 10, 64)
	if err != nil {
		return core.Window{}, fmt.Errorf("bad window bound %q", lo)
	}
	h, err := strconv.ParseInt(hi, 10, 64)
	if err != nil {
		return core.Window{}, fmt.Errorf("bad window bound %q", hi)
	}
	return core.Window{Dim: d, Lo: l, Hi: h}, nil
}

func parseCombineFunc(name string, n int) (core.CombineFunc, error) {
	switch {
	case name == "ratio":
		if n != 2 {
			return core.CombineFunc{}, fmt.Errorf("fc=ratio needs exactly 2 sources")
		}
		return core.Ratio(0, 1), nil
	case name == "diff":
		if n != 2 {
			return core.CombineFunc{}, fmt.Errorf("fc=diff needs exactly 2 sources")
		}
		return core.Diff(0, 1), nil
	case name == "sum":
		return core.SumOf(), nil
	case name == "max":
		return core.MaxOf(), nil
	case strings.HasPrefix(name, "pick"):
		i, err := strconv.Atoi(name[4:])
		if err != nil || i < 0 || i >= n {
			return core.CombineFunc{}, fmt.Errorf("bad fc %q", name)
		}
		return core.Pick(i), nil
	}
	return core.CombineFunc{}, fmt.Errorf("unknown fc %q (ratio, diff, sum, max, pickN)", name)
}

func parseAgg(v string) (agg.Kind, error) { return agg.ParseKind(v) }

// parseMeasure handles one measure declaration line.
func parseMeasure(s *model.Schema, wf *core.Workflow, fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("%s needs a measure name", fields[0])
	}
	kind, name := fields[0], fields[1]
	var (
		gran     model.Gran
		srcs     []string
		aggKind  = agg.Count
		aggSet   bool
		factM    = -1
		fcName   string
		windows  []core.Window
		opts     []core.MeasureOpt
		baseName string
	)
	i := 2
	for i < len(fields) {
		tok := fields[i]
		switch {
		case strings.HasPrefix(tok, "gran("):
			// gran(...) may have been split on spaces; rejoin.
			j := i
			for !strings.HasSuffix(fields[j], ")") {
				j++
				if j >= len(fields) {
					return fmt.Errorf("unterminated gran(...)")
				}
			}
			joined := strings.Join(fields[i:j+1], " ")
			g, err := parseGran(s, joined)
			if err != nil {
				return err
			}
			gran = g
			i = j + 1
		case strings.HasPrefix(tok, "src="):
			for _, n := range strings.Split(tok[4:], ",") {
				srcs = append(srcs, strings.TrimSpace(n))
			}
			i++
		case strings.HasPrefix(tok, "agg="):
			k, err := parseAgg(tok[4:])
			if err != nil {
				return err
			}
			aggKind, aggSet = k, true
			i++
		case strings.HasPrefix(tok, "m="):
			n, err := strconv.Atoi(tok[2:])
			if err != nil {
				return fmt.Errorf("bad measure index %q", tok)
			}
			factM = n
			i++
		case strings.HasPrefix(tok, "fc="):
			fcName = tok[3:]
			i++
		case strings.HasPrefix(tok, "base="):
			baseName = tok[5:]
			i++
		case tok == "window":
			if i+2 >= len(fields) {
				return fmt.Errorf("window needs DIM LO..HI")
			}
			w, err := parseWindow(s, fields[i+1], fields[i+2])
			if err != nil {
				return err
			}
			windows = append(windows, w)
			i += 3
		case tok == "where":
			if i+1 >= len(fields) {
				return fmt.Errorf("where needs a quoted clause")
			}
			p, err := parsePred(s, fields[i+1])
			if err != nil {
				return err
			}
			opts = append(opts, core.Where(p))
			i += 2
		default:
			return fmt.Errorf("unknown option %q", tok)
		}
	}
	if baseName != "" {
		opts = append(opts, core.WithBase(baseName))
	}

	switch kind {
	case "basic":
		if gran == nil {
			return fmt.Errorf("basic measure needs gran(...)")
		}
		if aggSet && aggKind != agg.Count && aggKind != agg.ConstZero && factM < 0 {
			return fmt.Errorf("agg=%v needs m=<index>", aggKind)
		}
		wf.Basic(name, gran, aggKind, factM, opts...)
	case "rollup":
		if gran == nil || len(srcs) != 1 {
			return fmt.Errorf("rollup needs gran(...) and exactly one src=")
		}
		wf.Rollup(name, gran, srcs[0], aggKind, opts...)
	case "parent":
		if gran == nil || len(srcs) != 1 {
			return fmt.Errorf("parent needs gran(...) and exactly one src=")
		}
		wf.FromParent(name, gran, srcs[0], aggKind, opts...)
	case "sliding":
		if len(srcs) != 1 || len(windows) == 0 {
			return fmt.Errorf("sliding needs src= and at least one window")
		}
		wf.Sliding(name, srcs[0], aggKind, windows, opts...)
	case "combine":
		if len(srcs) == 0 || fcName == "" {
			return fmt.Errorf("combine needs src= and fc=")
		}
		fc, err := parseCombineFunc(fcName, len(srcs))
		if err != nil {
			return err
		}
		wf.Combine(name, srcs, fc, opts...)
	}
	return nil
}
