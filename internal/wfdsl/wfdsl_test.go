package wfdsl

import (
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
)

const sampleNet = `
# busy-source analysis over the network schema
schema net
basic   Count   gran(t=Hour, U=IP) agg=count
rollup  sCount  gran(t=Hour) src=Count agg=count where "m0 > 5"
rollup  sSum    gran(t=Hour) src=Count agg=sum where "m0 > 5"
sliding avg6    src=sCount agg=avg window t 0..5
combine ratio   src=avg6,sCount fc=ratio
`

func TestParseSampleNet(t *testing.T) {
	p, err := Parse(sampleNet)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.NumDims() != 4 {
		t.Errorf("dims = %d", p.Schema.NumDims())
	}
	outs := p.Compiled.Outputs()
	if len(outs) != 5 {
		t.Fatalf("outputs = %v", outs)
	}
	m, err := p.Compiled.MeasureByName("sCount")
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != core.KindRollup || m.Filter == nil || m.Agg != agg.Count {
		t.Errorf("sCount = %+v", m)
	}
	m, _ = p.Compiled.MeasureByName("avg6")
	if m.Kind != core.KindSibling || len(m.Windows) != 1 || m.Windows[0].Hi != 5 {
		t.Errorf("avg6 = %+v", m)
	}
	m, _ = p.Compiled.MeasureByName("ratio")
	if m.Kind != core.KindCombine || len(m.Sources) != 2 {
		t.Errorf("ratio = %+v", m)
	}
}

func TestParseSynthSchema(t *testing.T) {
	p, err := Parse(`
schema synth dims=2 depth=2 fanout=4 measures=2
basic total gran(A1=L1) agg=sum m=1
parent share gran(A1=L0) src=total agg=sum
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.NumDims() != 2 || p.Schema.NumMeasures() != 2 {
		t.Errorf("schema %d/%d", p.Schema.NumDims(), p.Schema.NumMeasures())
	}
	m, _ := p.Compiled.MeasureByName("share")
	if m.Kind != core.KindFromParent {
		t.Errorf("share kind = %v", m.Kind)
	}
}

func TestParseWhereVariants(t *testing.T) {
	p, err := Parse(`
schema synth
basic a gran(A1=L1) agg=count where "m0 >= 2 and dim A2 = 3"
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := p.Compiled.MeasureByName("a")
	if m.Filter == nil {
		t.Fatal("filter lost")
	}
	if !m.Filter.Eval([]int64{0, 3, 0, 0}, []float64{2}) {
		t.Error("conjunction misfired")
	}
	if m.Filter.Eval([]int64{0, 4, 0, 0}, []float64{2}) {
		t.Error("dim clause ignored")
	}
}

func TestParseCombineFuncs(t *testing.T) {
	base := `
schema synth
basic a gran(A1=L1) agg=count
basic b gran(A1=L1) agg=count
`
	for _, fc := range []string{"ratio", "diff", "sum", "max", "pick1"} {
		_, err := Parse(base + "combine c src=a,b fc=" + fc + "\n")
		if err != nil {
			t.Errorf("fc=%s: %v", fc, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no schema", "basic a gran(A1=L0) agg=count", "declare the schema first"},
		{"schema twice", "schema net\nschema net", "declared twice"},
		{"unknown schema", "schema oracle", "unknown schema"},
		{"bad synth opt", "schema synth bogus=1", "unknown synth option"},
		{"bad synth val", "schema synth dims=x", "bad synth option"},
		{"unknown decl", "schema net\nfrobnicate a", "unknown declaration"},
		{"no gran", "schema net\nbasic a agg=count", "needs gran"},
		{"bad gran dim", "schema net\nbasic a gran(zz=Hour) agg=count", "no dimension"},
		{"bad gran domain", "schema net\nbasic a gran(t=Fortnight) agg=count", "no domain"},
		{"bad agg", "schema net\nbasic a gran(t=Hour) agg=mode", "unknown aggregation"},
		{"sum no m", "schema net\nbasic a gran(t=Hour) agg=sum", "needs m="},
		{"bad op", `schema net` + "\n" + `basic a gran(t=Hour) agg=count where "m0 ~ 3"`, "comparison operator"},
		{"bad clause", `schema net` + "\n" + `basic a gran(t=Hour) agg=count where "frogs"`, "cannot parse clause"},
		{"unterminated quote", "schema net\nbasic a gran(t=Hour) where \"m0 > 1", "unterminated quote"},
		{"rollup no src", "schema net\nbasic a gran(t=Hour) agg=count\nrollup r gran(t=Day)", "exactly one src"},
		{"sliding no window", "schema net\nbasic a gran(t=Hour) agg=count\nsliding s src=a", "at least one window"},
		{"bad window span", "schema net\nbasic a gran(t=Hour) agg=count\nsliding s src=a window t 1to2", "bad window span"},
		{"bad window dim", "schema net\nbasic a gran(t=Hour) agg=count\nsliding s src=a window zz 0..1", "no dimension"},
		{"combine no fc", "schema net\nbasic a gran(t=Hour) agg=count\ncombine c src=a", "needs src= and fc="},
		{"bad fc", "schema net\nbasic a gran(t=Hour) agg=count\ncombine c src=a fc=mode", "unknown fc"},
		{"ratio arity", "schema net\nbasic a gran(t=Hour) agg=count\ncombine c src=a fc=ratio", "exactly 2 sources"},
		{"unknown option", "schema net\nbasic a gran(t=Hour) agg=count banana", "unknown option"},
		{"empty", "\n\n# nothing\n", "no schema"},
		{"unterminated gran", "schema net\nbasic a gran(t=Hour", "unterminated gran"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("%s: parsed without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseBaseOption(t *testing.T) {
	p, err := Parse(`
schema synth
basic cells gran(A1=L1) agg=count
basic vals  gran(A1=L1) agg=sum m=0
sliding w src=vals agg=sum window A1 -1..1 base=cells
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := p.Compiled.MeasureByName("w")
	i, _ := p.Compiled.Index("cells")
	if m.Base != i {
		t.Error("base= ignored")
	}
}
